#include "ml/linear_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/onehot.h"
#include "linalg/kernels.h"
#include "ml/error_functions.h"

namespace sliceline::ml {
namespace {

TEST(ErrorFunctionsTest, SquaredLoss) {
  std::vector<double> e = SquaredLoss({1, 2, 3}, {1, 0, 5});
  EXPECT_DOUBLE_EQ(e[0], 0);
  EXPECT_DOUBLE_EQ(e[1], 4);
  EXPECT_DOUBLE_EQ(e[2], 4);
}

TEST(ErrorFunctionsTest, Inaccuracy) {
  std::vector<double> e = Inaccuracy({0, 1, 2}, {0, 2, 2});
  EXPECT_DOUBLE_EQ(e[0], 0);
  EXPECT_DOUBLE_EQ(e[1], 1);
  EXPECT_DOUBLE_EQ(e[2], 0);
}

TEST(ErrorFunctionsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

/// Builds a dense-ish sparse design matrix with known weights.
linalg::CsrMatrix RandomDesign(Rng& rng, int64_t n, int64_t d) {
  linalg::CooBuilder builder(n, d);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      if (rng.NextBool(0.6)) builder.Add(i, j, rng.NextGaussian());
    }
  }
  return builder.Build();
}

TEST(LinearRegressionTest, RecoversPlantedWeights) {
  Rng rng(17);
  const int64_t n = 400;
  const int64_t d = 6;
  linalg::CsrMatrix x = RandomDesign(rng, n, d);
  std::vector<double> w_true = {1.0, -2.0, 0.5, 3.0, 0.0, -1.0};
  std::vector<double> y = linalg::MatVec(x, w_true);
  for (double& v : y) v += 4.0;  // intercept
  LinearRegression::Options opts;
  opts.lambda = 1e-8;
  auto model = LinearRegression::Fit(x, y, opts);
  ASSERT_TRUE(model.ok());
  for (int64_t j = 0; j < d; ++j) {
    EXPECT_NEAR(model->weights()[j], w_true[j], 1e-4) << "weight " << j;
  }
  std::vector<double> pred = model->Predict(x);
  for (int64_t i = 0; i < n; ++i) EXPECT_NEAR(pred[i], y[i], 1e-3);
}

TEST(LinearRegressionTest, NoisyFitReducesError) {
  Rng rng(19);
  const int64_t n = 500;
  linalg::CsrMatrix x = RandomDesign(rng, n, 4);
  std::vector<double> y = linalg::MatVec(x, {2, -1, 0.5, 1});
  for (double& v : y) v += 0.1 * rng.NextGaussian();
  auto model = LinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  const double mse = Mean(SquaredLoss(y, model->Predict(x)));
  EXPECT_LT(mse, 0.05);
}

TEST(LinearRegressionTest, OneHotFeaturesWithGroupEffects) {
  // Regression on one-hot encoded categories: group means recovered.
  Rng rng(23);
  const int64_t n = 600;
  data::IntMatrix x0(n, 1);
  std::vector<double> y(n);
  const double group_mean[3] = {1.0, 5.0, -2.0};
  for (int64_t i = 0; i < n; ++i) {
    const int g = static_cast<int>(rng.NextUint64(3));
    x0.At(i, 0) = g + 1;
    y[i] = group_mean[g] + 0.01 * rng.NextGaussian();
  }
  const data::FeatureOffsets off = data::ComputeOffsets(x0);
  const linalg::CsrMatrix x = data::OneHotEncode(x0, off);
  LinearRegression::Options opts;
  opts.lambda = 1e-6;
  auto model = LinearRegression::Fit(x, y, opts);
  ASSERT_TRUE(model.ok());
  std::vector<double> pred = model->Predict(x);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(pred[i], group_mean[x0.At(i, 0) - 1], 0.05);
  }
}

TEST(LinearRegressionTest, RejectsShapeMismatch) {
  linalg::CsrMatrix x = linalg::CsrMatrix::Zero(3, 2);
  EXPECT_FALSE(LinearRegression::Fit(x, {1, 2}).ok());
}

TEST(LinearRegressionTest, RejectsEmpty) {
  EXPECT_FALSE(
      LinearRegression::Fit(linalg::CsrMatrix::Zero(0, 0), {}).ok());
}

}  // namespace
}  // namespace sliceline::ml
