// Streaming surface of the daemon: append_rows round trips (single-shot
// and chunked, with out-of-order transfers voided), result-cache
// invalidation keyed by the delta fingerprint chain, watch/unwatch/
// watch-status over the wire with tau-crossing alerts, unregister_dataset
// refusal rules, the stream metrics on /metrics, and a clean drain after
// streaming traffic.
#include <gtest/gtest.h>
#include <unistd.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/prometheus_validate.h"
#include "serve/client.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace sliceline::serve {
namespace {

struct TestCsv {
  std::string name;
  std::string path;
  std::string text;
};

const TestCsv& StreamCsv() {
  static const TestCsv* csv = [] {
    auto* c = new TestCsv;
    c->name = "stream_alpha";
    c->path = ::testing::TempDir() + "/serve_stream_alpha_" +
              std::to_string(::getpid()) + ".csv";
    c->text = MakeCsvText(800, 4, 3, 31);
    WriteFileOrDie(c->path, c->text);
    return c;
  }();
  return *csv;
}

RegisterDatasetRequest RegisterRequestFor(const TestCsv& csv) {
  RegisterDatasetRequest request;
  request.name = csv.name;
  request.csv_path = csv.path;
  request.label = "target";
  return request;
}

FindSlicesRequest FindFor(const std::string& dataset) {
  FindSlicesRequest find;
  find.dataset = dataset;
  find.k = 4;
  find.alpha = 0.95;
  return find;
}

ServerOptions UnixOptions(const std::string& socket_name) {
  ServerOptions options;
  options.unix_socket = ::testing::TempDir() + "/" +
                        std::to_string(::getpid()) + "_" + socket_name;
  return options;
}

struct ServerGuard {
  explicit ServerGuard(ServerOptions options) : server(options) {
    const Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~ServerGuard() {
    server.RequestShutdown();
    EXPECT_EQ(server.Wait(), 0);
  }
  Server server;
};

/// Raw feature cells in encoder order (c0..c3); values the base CSV's
/// dictionary has seen.
std::vector<std::vector<std::string>> BenignCells(int rows) {
  std::vector<std::vector<std::string>> cells;
  for (int i = 0; i < rows; ++i) {
    cells.push_back({"v0", "v2", "v1", std::string("v") +
                                           std::to_string(i % 3)});
  }
  return cells;
}

TEST(ServeStreamTest, AppendRoundTripRecodesAndInvalidatesCache) {
  ServerOptions options = UnixOptions("serve_stream_append.sock");
  ServerGuard guard(options);
  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->RegisterDataset(RegisterRequestFor(StreamCsv())).ok());

  auto before = client->FindSlices(FindFor(StreamCsv().name));
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  AppendRowsRequest append;
  append.dataset = StreamCsv().name;
  append.rows = BenignCells(5);
  append.errors = std::vector<double>(5, 100.0);
  auto applied = client->AppendRows(append);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->GetIntOr("rows_appended", 0), 5);
  EXPECT_EQ(applied->GetIntOr("n", 0), 805);
  EXPECT_EQ(applied->GetIntOr("version", 0), 1);
  // The cached result for the pre-append fingerprint is gone.
  EXPECT_EQ(applied->GetIntOr("cache_invalidated", -1), 1);
  EXPECT_EQ(guard.server.cache().invalidations(), 1);

  // The follow-up find recomputes over the appended dataset.
  auto after = client->FindSlices(FindFor(StreamCsv().name));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->cache_hit);
  EXPECT_NE(after->result.average_error, before->result.average_error);

  // Unseen categories and invalid errors are structured rejections that
  // leave the dataset untouched.
  AppendRowsRequest unseen;
  unseen.dataset = StreamCsv().name;
  unseen.rows = {{"v9", "v0", "v0", "v0"}};
  unseen.errors = {1.0};
  auto rejected = client->AppendRows(unseen);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  AppendRowsRequest negative;
  negative.dataset = StreamCsv().name;
  negative.rows = BenignCells(1);
  negative.errors = {-1.0};
  ASSERT_FALSE(client->AppendRows(negative).ok());

  AppendRowsRequest unknown;
  unknown.dataset = "no_such_dataset";
  unknown.rows = BenignCells(1);
  unknown.errors = {1.0};
  auto missing = client->AppendRows(unknown);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok());
  const obs::JsonValue* stream = stats->Find("stream");
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->GetIntOr("appends_total", 0), 1);
}

TEST(ServeStreamTest, ChunkedAppendAppliesOnceAndVoidsOutOfOrder) {
  ServerOptions options = UnixOptions("serve_stream_chunked.sock");
  ServerGuard guard(options);
  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok());
  RegisterDatasetRequest reg = RegisterRequestFor(StreamCsv());
  reg.name = "chunked";
  ASSERT_TRUE(client->RegisterDataset(reg).ok());

  // A chunk arriving before chunk 0 of its transfer is an error.
  AppendRowsRequest stray;
  stray.dataset = "chunked";
  stray.xfer = "t1";
  stray.chunk = 1;
  stray.chunks = 3;
  stray.rows = BenignCells(1);
  stray.errors = {1.0};
  auto out_of_order = client->AppendRows(stray);
  ASSERT_FALSE(out_of_order.ok());
  EXPECT_EQ(out_of_order.status().code(), StatusCode::kInvalidArgument);

  // Chunk 0 buffers; skipping ahead voids the transfer.
  AppendRowsRequest first = stray;
  first.chunk = 0;
  auto buffered = client->AppendRows(first);
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_EQ(buffered->GetIntOr("buffered_rows", 0), 1);
  AppendRowsRequest skipped = stray;
  skipped.chunk = 2;
  ASSERT_FALSE(client->AppendRows(skipped).ok());

  // A well-ordered transfer applies exactly its total row count.
  auto applied = client->AppendRowsChunked("chunked", BenignCells(5),
                                           std::vector<double>(5, 2.0),
                                           /*rows_per_chunk=*/2);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->GetIntOr("rows_appended", 0), 5);
  EXPECT_EQ(applied->GetIntOr("n", 0), 805);
}

TEST(ServeStreamTest, WatchFiresAlertOverWireAndReportsStatus) {
  ServerOptions options = UnixOptions("serve_stream_watch.sock");
  ServerGuard guard(options);
  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok());
  RegisterDatasetRequest reg = RegisterRequestFor(StreamCsv());
  reg.name = "watched";
  ASSERT_TRUE(client->RegisterDataset(reg).ok());

  // No watch yet: the dataset-keyed get_status form is NotFound.
  auto unwatched = client->WatchStatus("watched");
  ASSERT_FALSE(unwatched.ok());
  EXPECT_EQ(unwatched.status().code(), StatusCode::kNotFound);

  // The base CSV plants a high-error (c0=v1, c1=v1) subgroup, so the first
  // evaluation already clears a low tau and must fire exactly once.
  WatchRequest watch;
  watch.dataset = "watched";
  watch.tau = 0.5;
  watch.hysteresis = 0.2;
  auto watching = client->Watch(watch);
  ASSERT_TRUE(watching.ok()) << watching.status().ToString();
  EXPECT_FALSE(watching->GetBoolOr("replaced", true));
  EXPECT_EQ(watching->GetIntOr("window_rows", 0), 800);
  EXPECT_EQ(guard.server.watch_count(), 1);

  AppendRowsRequest append;
  append.dataset = "watched";
  append.rows = BenignCells(5);
  append.errors = std::vector<double>(5, 0.1);
  auto fired = client->AppendRows(append);
  ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  const obs::JsonValue* alert = fired->Find("alert");
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert->GetStringOr("dataset", ""), "watched");
  EXPECT_GE(alert->Find("score")->number_value(), watch.tau);
  EXPECT_EQ(alert->GetIntOr("at_rows", 0), 805);

  // Still above tau: the next append does not re-fire.
  auto quiet = client->AppendRows(append);
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->Find("alert"), nullptr);

  auto status = client->WatchStatus("watched");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_TRUE(status->GetBoolOr("watching", false));
  EXPECT_FALSE(status->GetBoolOr("armed", true));
  EXPECT_EQ(status->GetIntOr("alerts_fired", 0), 1);
  EXPECT_EQ(status->GetIntOr("evaluations", 0), 2);
  EXPECT_EQ(status->GetIntOr("total_rows", 0), 810);
  const obs::JsonValue* recent = status->Find("recent_alerts");
  ASSERT_NE(recent, nullptr);
  EXPECT_EQ(recent->array_items().size(), 1u);
  EXPECT_EQ(guard.server.stream_alerts_total(), 1);

  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok());
  const obs::JsonValue* stream = stats->Find("stream");
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->GetIntOr("watches", 0), 1);
  EXPECT_EQ(stream->GetIntOr("alerts_total", 0), 1);

  auto unwatch = client->Unwatch("watched");
  ASSERT_TRUE(unwatch.ok());
  EXPECT_TRUE(unwatch->GetBoolOr("existed", false));
  EXPECT_EQ(guard.server.watch_count(), 0);
  ASSERT_FALSE(client->WatchStatus("watched").ok());
}

TEST(ServeStreamTest, UnregisterRefusesWatchedDatasetThenSucceeds) {
  ServerOptions options = UnixOptions("serve_stream_unregister.sock");
  ServerGuard guard(options);
  auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(client.ok());
  RegisterDatasetRequest reg = RegisterRequestFor(StreamCsv());
  reg.name = "ephemeral";
  ASSERT_TRUE(client->RegisterDataset(reg).ok());
  ASSERT_TRUE(client->FindSlices(FindFor("ephemeral")).ok());

  auto missing = client->UnregisterDataset("no_such_dataset");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  WatchRequest watch;
  watch.dataset = "ephemeral";
  watch.tau = 100.0;
  ASSERT_TRUE(client->Watch(watch).ok());
  auto refused = client->UnregisterDataset("ephemeral");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(client->Unwatch("ephemeral").ok());
  auto dropped = client->UnregisterDataset("ephemeral");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  // The cached find for the dropped dataset went with it.
  EXPECT_EQ(dropped->GetIntOr("cache_invalidated", -1), 1);
  EXPECT_EQ(guard.server.registry().size(), 0u);

  auto gone = client->FindSlices(FindFor("ephemeral"));
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);

  // Re-registering under the same name starts a fresh version lineage.
  ASSERT_TRUE(client->RegisterDataset(reg).ok());
  ASSERT_TRUE(client->FindSlices(FindFor("ephemeral")).ok());
}

TEST(ServeStreamTest, ActiveJobsGateUnregister) {
  auto dataset =
      BuildRegisteredDataset("held", MakeCsvText(120, 3, 3, 32));
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  Scheduler::Options options;
  options.workers = 1;
  options.remote_engine =
      [&](const data::EncodedDataset&, const core::SliceLineConfig&,
          uint64_t, obs::DistObsBundle*) -> StatusOr<core::SliceLineResult> {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    return core::SliceLineResult{};
  };
  Scheduler scheduler(options);

  JobSpec spec;
  spec.dataset = dataset.value();
  spec.engine = "remote";
  auto job = scheduler.Submit(std::move(spec));
  ASSERT_TRUE(job.ok()) << job.status().ToString();

  // Non-terminal (queued or blocked inside the engine): the dataset is
  // referenced and unregister must refuse.
  EXPECT_TRUE(scheduler.HasActiveJobsForDataset("held"));
  EXPECT_FALSE(scheduler.HasActiveJobsForDataset("other"));

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  job.value()->WaitDone();
  EXPECT_FALSE(scheduler.HasActiveJobsForDataset("held"));
}

TEST(ServeStreamTest, StreamSeriesOnMetricsEndpoint) {
  ServerOptions options = UnixOptions("serve_stream_metrics.sock");
  ServerGuard guard(options);
  {
    auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
    ASSERT_TRUE(client.ok());
    RegisterDatasetRequest reg = RegisterRequestFor(StreamCsv());
    reg.name = "metered";
    ASSERT_TRUE(client->RegisterDataset(reg).ok());
    ASSERT_TRUE(client->FindSlices(FindFor("metered")).ok());
    AppendRowsRequest append;
    append.dataset = "metered";
    append.rows = BenignCells(3);
    append.errors = std::vector<double>(3, 1.0);
    ASSERT_TRUE(client->AppendRows(append).ok());
  }
  auto metrics = FetchMetrics(Endpoint::Unix(options.unix_socket));
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& text = metrics.value();
  EXPECT_TRUE(obs::ValidatePrometheusText(text).empty())
      << obs::ValidatePrometheusText(text);
  for (const char* series :
       {"sliceline_stream_appends_total", "sliceline_stream_alerts_total",
        "sliceline_serve_result_cache_entries",
        "sliceline_serve_result_cache_evictions",
        "sliceline_serve_result_cache_invalidations"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
}

TEST(ServeStreamTest, DrainAfterStreamingTrafficExitsCleanly) {
  ServerOptions options = UnixOptions("serve_stream_drain.sock");
  auto server = std::make_unique<Server>(options);
  ASSERT_TRUE(server->Start().ok());
  {
    auto client = Client::Connect(Endpoint::Unix(options.unix_socket));
    ASSERT_TRUE(client.ok());
    RegisterDatasetRequest reg = RegisterRequestFor(StreamCsv());
    reg.name = "draining";
    ASSERT_TRUE(client->RegisterDataset(reg).ok());
    WatchRequest watch;
    watch.dataset = "draining";
    watch.tau = 0.5;
    ASSERT_TRUE(client->Watch(watch).ok());
    AppendRowsRequest append;
    append.dataset = "draining";
    append.rows = BenignCells(2);
    append.errors = std::vector<double>(2, 1.0);
    // The append (and its watch evaluation) completes before the drain
    // lets the connection go: the alert is recorded, the exit is clean.
    auto applied = client->AppendRows(append);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }
  server->RequestShutdown();
  EXPECT_EQ(server->Wait(), 0);
  EXPECT_EQ(server->watch_count(), 1);
}

}  // namespace
}  // namespace sliceline::serve
