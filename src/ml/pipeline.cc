#include "ml/pipeline.h"

#include "ml/error_functions.h"
#include "ml/kmeans.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"

namespace sliceline::ml {

StatusOr<double> TrainAndMaterializeErrors(data::EncodedDataset* dataset) {
  const data::FeatureOffsets offsets = data::ComputeOffsets(dataset->x0);
  const linalg::CsrMatrix x = data::OneHotEncode(dataset->x0, offsets);
  if (dataset->task == data::Task::kRegression) {
    SLICELINE_ASSIGN_OR_RETURN(LinearRegression model,
                               LinearRegression::Fit(x, dataset->y));
    dataset->errors = SquaredLoss(dataset->y, model.Predict(x));
  } else {
    LogisticRegression::Options opts;
    opts.num_classes = dataset->num_classes;
    SLICELINE_ASSIGN_OR_RETURN(
        LogisticRegression model,
        LogisticRegression::Fit(x, dataset->y, opts));
    dataset->errors = Inaccuracy(dataset->y, model.Predict(x));
  }
  return Mean(dataset->errors);
}

Status DeriveLabelsByClustering(data::EncodedDataset* dataset, int k) {
  const data::FeatureOffsets offsets = data::ComputeOffsets(dataset->x0);
  const linalg::CsrMatrix x = data::OneHotEncode(dataset->x0, offsets);
  KMeans::Options opts;
  opts.k = k;
  SLICELINE_ASSIGN_OR_RETURN(KMeans::Result result, KMeans::Run(x, opts));
  dataset->y = std::move(result.assignments);
  dataset->task = data::Task::kClassification;
  dataset->num_classes = k;
  return Status::OK();
}

}  // namespace sliceline::ml
