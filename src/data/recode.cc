#include "data/recode.h"

namespace sliceline::data {

RecodeMap RecodeMap::Fit(const std::vector<std::string>& values) {
  RecodeMap map;
  for (const std::string& v : values) {
    auto [it, inserted] = map.value_to_code_.try_emplace(
        v, static_cast<int32_t>(map.code_to_value_.size() + 1));
    if (inserted) map.code_to_value_.push_back(v);
  }
  return map;
}

StatusOr<int32_t> RecodeMap::Encode(const std::string& value) const {
  auto it = value_to_code_.find(value);
  if (it == value_to_code_.end()) {
    return Status::NotFound("unseen category '" + value + "'");
  }
  return it->second;
}

StatusOr<std::vector<int32_t>> RecodeMap::EncodeAll(
    const std::vector<std::string>& values) const {
  std::vector<int32_t> out;
  out.reserve(values.size());
  for (const std::string& v : values) {
    SLICELINE_ASSIGN_OR_RETURN(int32_t code, Encode(v));
    out.push_back(code);
  }
  return out;
}

StatusOr<std::string> RecodeMap::Decode(int32_t code) const {
  if (code < 1 || code > domain()) {
    return Status::OutOfRange("code " + std::to_string(code) +
                              " outside domain 1.." +
                              std::to_string(domain()));
  }
  return code_to_value_[code - 1];
}

}  // namespace sliceline::data
