file(REMOVE_RECURSE
  "CMakeFiles/salary_regression_debugging.dir/salary_regression_debugging.cpp.o"
  "CMakeFiles/salary_regression_debugging.dir/salary_regression_debugging.cpp.o.d"
  "salary_regression_debugging"
  "salary_regression_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salary_regression_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
