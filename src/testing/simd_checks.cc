// SIMD differential check of the fuzzing subsystem: every bit-packed
// evaluation kernel at every ISA level this host can execute, against the
// always-compiled scalar reference — first on random bitmaps regenerated
// from the case seed (word tails, all-zero and full columns), then end to
// end on the case's dataset: the full RunSliceLine top-K under each forced
// ISA must be BIT-identical to the scalar-forced run.
#include <algorithm>
#include <cstring>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sliceline.h"
#include "linalg/bitmap.h"
#include "linalg/kernels_simd.h"
#include "testing/checks.h"

namespace sliceline::testing {
namespace {

using linalg::Bitmap;
using linalg::MaskedStats;
using linalg::SimdIsa;
using linalg::SimdKernels;

std::string DescribeCase(const FuzzCase& fuzz_case) {
  std::ostringstream os;
  os << "[profile=" << fuzz_case.profile << " seed=" << fuzz_case.seed
     << " n=" << fuzz_case.x0.rows() << " m=" << fuzz_case.x0.cols() << "]";
  return os.str();
}

bool BitEqual(double a, double b) {
  uint64_t ab = 0;
  uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

/// One seeded kernel round: random bitmaps over a random row count (biased
/// toward word-boundary tails) run through every kernel of `isa` and of the
/// scalar reference; any divergence is returned as a diagnostic.
std::string RunKernelRound(Rng& rng, SimdIsa isa) {
  const SimdKernels& simd = linalg::KernelsFor(isa);
  const SimdKernels& scalar = linalg::KernelsFor(SimdIsa::kScalar);
  std::ostringstream os;
  os << "isa=" << linalg::IsaName(isa) << " ";

  // Row counts hug the word boundaries where packing bugs live.
  static constexpr int64_t kRowChoices[] = {1, 63, 64, 65, 127, 255, 1024,
                                            4099};
  const int64_t rows = kRowChoices[rng.NextUint64(std::size(kRowChoices))];
  const int64_t words = linalg::BitmapWords(rows);

  const int num_cols = static_cast<int>(rng.NextInt(2, 5));
  std::vector<Bitmap> bitmaps;
  for (int c = 0; c < num_cols; ++c) {
    Bitmap b(rows);
    // Mix of empty, full, and random-density columns.
    const double density = rng.NextBool(0.2)   ? 0.0
                           : rng.NextBool(0.2) ? 1.1
                                               : rng.NextDouble();
    for (int64_t r = 0; r < rows; ++r) {
      if (rng.NextBool(density)) b.Set(r);
    }
    bitmaps.push_back(std::move(b));
  }
  std::vector<double> errors(static_cast<size_t>(words) * 64);
  for (double& e : errors) e = rng.NextDouble() * 2.0;

  for (int c = 0; c + 1 < num_cols; ++c) {
    const Bitmap& a = bitmaps[static_cast<size_t>(c)];
    const Bitmap& b = bitmaps[static_cast<size_t>(c + 1)];
    if (simd.popcount(a.data(), words) != scalar.popcount(a.data(), words)) {
      os << "popcount diverges from scalar (rows=" << rows << ")";
      return os.str();
    }
    if (simd.and_popcount(a.data(), b.data(), words) !=
        scalar.and_popcount(a.data(), b.data(), words)) {
      os << "and_popcount diverges from scalar (rows=" << rows << ")";
      return os.str();
    }
    std::vector<uint64_t> got(a.data(), a.data() + words);
    std::vector<uint64_t> want = got;
    simd.and_inplace(got.data(), b.data(), words);
    scalar.and_inplace(want.data(), b.data(), words);
    if (got != want) {
      os << "and_inplace diverges from scalar (rows=" << rows << ")";
      return os.str();
    }
    MaskedStats simd_stats;
    simd.masked_stats(a.data(), words, errors.data(), &simd_stats);
    MaskedStats scalar_stats;
    scalar.masked_stats(a.data(), words, errors.data(), &scalar_stats);
    if (simd_stats.count != scalar_stats.count ||
        !BitEqual(simd_stats.sum, scalar_stats.sum) ||
        !BitEqual(simd_stats.max, scalar_stats.max)) {
      os << "masked_stats diverges from scalar (rows=" << rows
         << " count=" << simd_stats.count << "/" << scalar_stats.count << ")";
      return os.str();
    }
  }

  std::vector<const uint64_t*> cols;
  for (const Bitmap& b : bitmaps) cols.push_back(b.data());
  std::vector<uint64_t> got(static_cast<size_t>(words));
  std::vector<uint64_t> want(static_cast<size_t>(words));
  const int64_t got_count = simd.intersect_columns(
      cols.data(), static_cast<int32_t>(cols.size()), got.data(), words);
  const int64_t want_count = scalar.intersect_columns(
      cols.data(), static_cast<int32_t>(cols.size()), want.data(), words);
  if (got_count != want_count || got != want) {
    os << "intersect_columns diverges from scalar (rows=" << rows
       << " len=" << cols.size() << " count=" << got_count << "/"
       << want_count << ")";
    return os.str();
  }
  return "";
}

/// Restores environment/auto ISA selection on scope exit, so a failing check
/// never leaves the process pinned to a test ISA.
struct ScopedIsaReset {
  ~ScopedIsaReset() { linalg::ClearForcedIsa(); }
};

std::string CompareTopKBitIdentical(const core::SliceLineResult& base,
                                    const core::SliceLineResult& run,
                                    const std::string& label) {
  std::ostringstream os;
  if (base.top_k.size() != run.top_k.size()) {
    os << label << ": top-K size " << run.top_k.size() << " vs scalar "
       << base.top_k.size();
    return os.str();
  }
  for (size_t i = 0; i < base.top_k.size(); ++i) {
    const core::Slice& a = base.top_k[i];
    const core::Slice& b = run.top_k[i];
    if (a.predicates != b.predicates) {
      os << label << ": rank " << i << " predicates differ";
      return os.str();
    }
    if (a.stats.size != b.stats.size ||
        !BitEqual(a.stats.score, b.stats.score) ||
        !BitEqual(a.stats.error_sum, b.stats.error_sum) ||
        !BitEqual(a.stats.max_error, b.stats.max_error)) {
      os << label << ": rank " << i << " stats not bit-identical"
         << " (score " << a.stats.score << " vs " << b.stats.score << ")";
      return os.str();
    }
  }
  return "";
}

}  // namespace

std::string CheckSimdDifferential(const FuzzCase& fuzz_case) {
  // (1) Seeded kernel rounds at every available ISA. The scalar-vs-scalar
  // round is not skipped: it exercises the kernels on this round's shapes
  // even on hosts with no vector units.
  Rng rng(fuzz_case.seed * 0x9e3779b97f4a7c15ULL + 1);
  for (SimdIsa isa : linalg::AvailableIsas()) {
    std::string failure = RunKernelRound(rng, isa);
    if (!failure.empty()) {
      return DescribeCase(fuzz_case) + " " + failure;
    }
  }

  // (2) End-to-end: the case's dataset through the native engine on the
  // bit-packed strategy, once per ISA, all bit-identical to scalar. The
  // fuzzed ablation toggles are NOT honored here: with pruning disabled and
  // depth unbounded some generated cases enumerate combinatorially (the
  // known ablation pathology the governance smoke also sidesteps), and this
  // check's subject is the kernels, not the pruning logic. Full pruning plus
  // a depth cap keeps every case's run bounded.
  ScopedIsaReset reset;
  core::SliceLineConfig config = fuzz_case.config;
  config.eval_strategy = core::SliceLineConfig::EvalStrategy::kBitset;
  config.prune_size = true;
  config.prune_score = true;
  config.prune_parents = true;
  config.deduplicate = true;
  config.max_level = config.max_level == 0 ? 3 : std::min(config.max_level, 3);

  linalg::ForceIsa(SimdIsa::kScalar);
  auto base = core::RunSliceLine(fuzz_case.x0, fuzz_case.errors, config);
  if (!base.ok()) return "";  // invalid inputs are the oracle check's domain

  for (SimdIsa isa : linalg::AvailableIsas()) {
    if (isa == SimdIsa::kScalar) continue;
    linalg::ForceIsa(isa);
    auto run = core::RunSliceLine(fuzz_case.x0, fuzz_case.errors, config);
    if (!run.ok()) {
      return DescribeCase(fuzz_case) + " isa=" + linalg::IsaName(isa) +
             " run failed: " + run.status().ToString();
    }
    std::string diff = CompareTopKBitIdentical(
        *base, *run, std::string("isa=") + linalg::IsaName(isa));
    if (!diff.empty()) return DescribeCase(fuzz_case) + " " + diff;
  }
  return "";
}

}  // namespace sliceline::testing
