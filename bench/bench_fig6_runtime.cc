// Reproduces Figure 6(a) (Local End-to-End Runtime): total slice-finding
// runtime per dataset with defaults sigma = n/100, alpha = 0.95,
// ceil(L) = 3, including one-hot encoding/index construction, as the paper
// measures end-to-end runtime including data preparation.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"

int main() {
  using namespace sliceline;
  bench::Banner("Figure 6(a): Local End-to-End Runtime",
                "SliceLine Figure 6(a)");
  bench::Reporter reporter("bench_fig6_runtime", "SliceLine Figure 6(a)");
  std::printf("%-12s %12s %8s %12s %12s %12s\n", "dataset", "rows", "m",
              "evaluated", "top1-score", "time[s]");
  const std::vector<const char*> names = {"salaries", "adult", "covtype",
                                          "kdd98",    "uscensus", "criteo"};
  for (const char* name : names) {
    data::EncodedDataset ds = bench::Load(name);
    core::SliceLineConfig config;
    config.alpha = 0.95;
    config.k = 4;
    config.max_level = 3;
    core::SliceLineResult result;
    // Timed() includes one-hot/index prep inside RunSliceLine.
    const double elapsed = bench::Timed(
        [&] { result = bench::Unwrap(core::RunSliceLine(ds, config), name); });
    const double top1 =
        result.top_k.empty() ? 0.0 : result.top_k[0].stats.score;
    std::printf("%-12s %12s %8lld %12s %12s %12s\n", name,
                FormatWithCommas(ds.n()).c_str(),
                static_cast<long long>(ds.m()),
                FormatWithCommas(result.total_evaluated).c_str(),
                FormatDouble(top1, 4).c_str(),
                FormatDouble(elapsed, 3).c_str());
    reporter.AddRow(name,
                    {{"rows", static_cast<double>(ds.n())},
                     {"features", static_cast<double>(ds.m())},
                     {"evaluated", static_cast<double>(result.total_evaluated)},
                     {"top1_score", top1},
                     {"seconds", elapsed}});
  }
  std::printf(
      "\nExpected shape (paper): all datasets complete in interactive time\n"
      "despite many rows (uscensus), many features (kdd98), and strong\n"
      "correlations (covtype/uscensus/criteo).\n");
  return reporter.Finish();
}
