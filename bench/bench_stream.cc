// Incremental vs from-scratch slice finding on an append-only dataset.
//
// Each section times a monitoring loop — K appends of a fixed delta, each
// followed by a top-K find — two ways: through StreamingSliceFinder
// (cached per-candidate statistic chains continued over just the delta)
// and from scratch (a plain engine run over the concatenated rows after
// every append, what a caller without the stream subsystem would do).
// Timing whole loops instead of single ~8ms finds keeps every section
// above tools/bench_compare's --min-seconds floor, so both paths gate in
// CI against the checked-in BENCH_stream.json; the per-append speedup is
// recorded as an informational ratio. A final group times steady-state
// SliceWatcher::OnAppend across sliding-window sizes.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/run_context.h"
#include "core/evaluator.h"
#include "core/sliceline.h"
#include "data/int_matrix.h"
#include "stream/segment.h"
#include "stream/stream_finder.h"
#include "stream/watcher.h"

namespace {

using namespace sliceline;

core::SliceLineConfig BenchConfig() {
  core::SliceLineConfig config;
  config.k = 4;
  config.alpha = 0.95;
  config.max_level = 3;
  return config;
}

data::IntMatrix RowSlice(const data::IntMatrix& x0, int64_t begin,
                         int64_t end) {
  data::IntMatrix out(end - begin, x0.cols());
  for (int64_t r = begin; r < end; ++r) {
    const int32_t* src = x0.row(r);
    std::copy(src, src + x0.cols(), out.row(r - begin));
  }
  return out;
}

std::vector<double> ErrorSlice(const std::vector<double>& errors,
                               int64_t begin, int64_t end) {
  return std::vector<double>(errors.begin() + static_cast<size_t>(begin),
                             errors.begin() + static_cast<size_t>(end));
}

volatile double g_sink = 0.0;

void Sink(const core::SliceLineResult& result) {
  g_sink = g_sink + (result.top_k.empty() ? 0.0 : result.top_k[0].stats.score);
}

constexpr int kReps = 3;

struct LoopShape {
  const char* label;
  int64_t delta_rows;  ///< rows per append
  int appends;         ///< K: appends (each followed by a find) per loop
};

/// Times the from-scratch side of one monitoring loop: a plain engine run
/// over rows [0, base + (k+1)*delta) after each of the K appends. The
/// prefix datasets are materialized before the clock starts so the loop
/// times evaluator construction + the engine, not memcpy.
double TimeFromScratchLoop(const data::EncodedDataset& dataset,
                           const data::FeatureOffsets& offsets,
                           int64_t base_rows, const LoopShape& shape,
                           const core::SliceLineConfig& config) {
  struct Prefix {
    data::IntMatrix x0;
    std::vector<double> errors;
  };
  std::vector<Prefix> prefixes;
  prefixes.reserve(shape.appends);
  for (int k = 0; k < shape.appends; ++k) {
    const int64_t end = base_rows + (k + 1) * shape.delta_rows;
    prefixes.push_back(Prefix{RowSlice(dataset.x0, 0, end),
                              ErrorSlice(dataset.errors, 0, end)});
  }
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double seconds = bench::Timed([&] {
      for (const Prefix& prefix : prefixes) {
        const core::SliceEvaluator evaluator(prefix.x0, offsets,
                                             prefix.errors);
        Sink(bench::Unwrap(core::RunSliceLineWithBackend(evaluator, config),
                           "from-scratch find"));
      }
    });
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

struct IncrementalTiming {
  double best_seconds = 0.0;
  stream::StreamFindStats stats;  ///< from the loop's final find
};

/// Times the incremental side of the same loop: one finder built over the
/// base rows and primed with an untimed find, then K timed append+find
/// cycles continuing the cached statistic chains over each delta.
IncrementalTiming TimeIncrementalLoop(const data::EncodedDataset& dataset,
                                      const std::vector<int32_t>& domains,
                                      int64_t base_rows,
                                      const LoopShape& shape,
                                      const core::SliceLineConfig& config) {
  IncrementalTiming timing;
  for (int rep = 0; rep < kReps; ++rep) {
    stream::StreamOptions options;
    options.domains = domains;
    options.full_rerun_fraction = 0.0;  // measure the incremental path
    auto finder = stream::StreamingSliceFinder::Create(
        RowSlice(dataset.x0, 0, base_rows),
        ErrorSlice(dataset.errors, 0, base_rows), options);
    if (!finder.ok()) {
      std::fprintf(stderr, "streaming create failed: %s\n",
                   finder.status().ToString().c_str());
      std::exit(1);
    }
    Sink(bench::Unwrap(finder.value()->Find(config), "priming find"));
    struct Delta {
      data::IntMatrix x0;
      std::vector<double> errors;
    };
    std::vector<Delta> deltas;
    deltas.reserve(shape.appends);
    for (int k = 0; k < shape.appends; ++k) {
      const int64_t begin = base_rows + k * shape.delta_rows;
      deltas.push_back(
          Delta{RowSlice(dataset.x0, begin, begin + shape.delta_rows),
                ErrorSlice(dataset.errors, begin, begin + shape.delta_rows)});
    }
    const double seconds = bench::Timed([&] {
      for (const Delta& delta : deltas) {
        const Status appended =
            finder.value()->Append(delta.x0, delta.errors);
        if (!appended.ok()) {
          std::fprintf(stderr, "streaming append failed: %s\n",
                       appended.ToString().c_str());
          std::exit(1);
        }
        Sink(bench::Unwrap(finder.value()->Find(config),
                           "incremental find"));
      }
    });
    if (rep == 0 || seconds < timing.best_seconds) {
      timing.best_seconds = seconds;
    }
    timing.stats = finder.value()->last_find_stats();
  }
  return timing;
}

/// Steady-state OnAppend cost for one sliding-window size: after two
/// warm-up appends (which may rebuild the window), times a loop of
/// `appends` appends of `delta_rows` rows each.
double TimeWatcherLoop(const data::EncodedDataset& dataset,
                       const std::vector<int32_t>& domains,
                       int64_t window_rows, int64_t delta_rows, int appends,
                       const core::SliceLineConfig& config) {
  struct Delta {
    data::IntMatrix x0;
    std::vector<double> errors;
  };
  const int64_t base = std::min<int64_t>(dataset.n() / 2, 2 * window_rows);
  auto next_delta = [&, cursor = base]() mutable {
    if (cursor + delta_rows > dataset.n()) cursor = base;
    Delta delta{RowSlice(dataset.x0, cursor, cursor + delta_rows),
                ErrorSlice(dataset.errors, cursor, cursor + delta_rows)};
    cursor += delta_rows;
    return delta;
  };
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    SimulatedClock clock(0.0);
    stream::WatchOptions options;
    options.tau = 1e9;  // alerting is not the subject here
    options.window_rows = window_rows;
    options.config = config;
    options.stream.domains = domains;
    auto watcher = stream::SliceWatcher::Create(
        "bench", RowSlice(dataset.x0, 0, base),
        ErrorSlice(dataset.errors, 0, base), dataset.feature_names, options,
        &clock);
    if (!watcher.ok()) {
      std::fprintf(stderr, "watcher create failed: %s\n",
                   watcher.status().ToString().c_str());
      std::exit(1);
    }
    auto append = [&](const Delta& delta) {
      clock.Advance(1.0);
      auto fired = watcher.value()->OnAppend(delta.x0, delta.errors);
      if (!fired.ok()) {
        std::fprintf(stderr, "watcher append failed: %s\n",
                     fired.status().ToString().c_str());
        std::exit(1);
      }
    };
    for (int warm = 0; warm < 2; ++warm) append(next_delta());
    std::vector<Delta> deltas;
    deltas.reserve(appends);
    for (int k = 0; k < appends; ++k) deltas.push_back(next_delta());
    const double seconds = bench::Timed([&] {
      for (const Delta& delta : deltas) append(delta);
    });
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace

int main() {
  bench::Banner("bench_stream: incremental slice finding on dataset deltas",
                "Sec. 4 experiment setup, extended to streaming appends");
  bench::Reporter reporter("bench_stream",
                           "incremental vs from-scratch on appends");

  // 100k rows: large enough that the O(n) statistic evaluation dominates
  // the per-find enumeration overhead, which is what the incremental path
  // saves. At 20k the fixed enumeration cost caps the speedup near 3x.
  const data::EncodedDataset dataset = bench::Load("adult", 100000);
  const std::vector<int32_t> domains = dataset.x0.ColMaxs();
  const data::FeatureOffsets offsets = stream::OffsetsFromDomains(domains);
  const core::SliceLineConfig config = BenchConfig();
  const int64_t n = dataset.n();
  std::printf("dataset=adult n=%lld m=%lld (k=%d alpha=%.2f max_level=%d)\n\n",
              static_cast<long long>(n), static_cast<long long>(dataset.m()),
              config.k, config.alpha, config.max_level);

  // Delta fractions are of the final row count; each loop ends at n rows.
  const LoopShape kShapes[] = {{"0.1pct", std::max<int64_t>(1, n / 1000), 10},
                               {"1pct", std::max<int64_t>(1, n / 100), 10},
                               {"10pct", std::max<int64_t>(1, n / 10), 5}};
  std::printf("  %-8s %8s x%-3s %14s %14s %9s\n", "delta", "rows", "K",
              "incr loop", "scratch loop", "speedup");
  for (const LoopShape& shape : kShapes) {
    const int64_t base_rows = n - shape.appends * shape.delta_rows;
    const IncrementalTiming incremental =
        TimeIncrementalLoop(dataset, domains, base_rows, shape, config);
    const double scratch =
        TimeFromScratchLoop(dataset, offsets, base_rows, shape, config);
    const double speedup = incremental.best_seconds > 0.0
                               ? scratch / incremental.best_seconds
                               : 0.0;
    std::printf("  %-8s %8lld x%-3d %13.6fs %13.6fs %8.1fx\n", shape.label,
                static_cast<long long>(shape.delta_rows), shape.appends,
                incremental.best_seconds, scratch, speedup);
    reporter.AddRow(
        std::string("incremental_") + shape.label,
        {{"best_seconds", incremental.best_seconds},
         {"delta_rows", static_cast<double>(shape.delta_rows)},
         {"appends", static_cast<double>(shape.appends)},
         {"speedup", speedup},
         {"candidates_cached",
          static_cast<double>(incremental.stats.candidates_cached)},
         {"candidates_delta",
          static_cast<double>(incremental.stats.candidates_delta)},
         {"candidates_full",
          static_cast<double>(incremental.stats.candidates_full)}});
    reporter.AddRow(std::string("from_scratch_") + shape.label,
                    {{"best_seconds", scratch},
                     {"delta_rows", static_cast<double>(shape.delta_rows)},
                     {"appends", static_cast<double>(shape.appends)}});
  }

  constexpr int kWatchAppends = 10;
  std::printf("\n  %-8s %8s x%-3s %14s\n", "window", "delta", "K",
              "append loop");
  for (const int64_t window_rows : {int64_t{1000}, int64_t{4000},
                                    int64_t{16000}}) {
    const int64_t delta_rows = std::max<int64_t>(1, window_rows / 20);
    const double seconds = TimeWatcherLoop(dataset, domains, window_rows,
                                           delta_rows, kWatchAppends, config);
    std::printf("  %-8lld %8lld x%-3d %13.6fs\n",
                static_cast<long long>(window_rows),
                static_cast<long long>(delta_rows), kWatchAppends, seconds);
    reporter.AddRow("watch_window_" + std::to_string(window_rows),
                    {{"best_seconds", seconds},
                     {"delta_rows", static_cast<double>(delta_rows)},
                     {"appends", static_cast<double>(kWatchAppends)}});
  }

  std::printf("\n(sink=%g)\n", g_sink);
  return reporter.Finish();
}
