#ifndef SLICELINE_CORE_TOPK_H_
#define SLICELINE_CORE_TOPK_H_

#include <vector>

#include "core/slice.h"

namespace sliceline::core {

/// Maintains the running top-K slices (Section 4.5). Only slices satisfying
/// the problem constraints (score > 0 and size >= sigma) are admitted; the
/// K-th score is exposed as the monotonically increasing pruning threshold
/// sc_k of Equation 9.
class TopK {
 public:
  TopK(int k, int64_t min_support);

  /// Offers a slice; inserted if it qualifies and beats the current K-th.
  void Offer(Slice slice);

  /// Current pruning threshold: the K-th best score when the set is full,
  /// otherwise 0 (every admissible slice must score > 0 regardless).
  double Threshold() const;

  bool Full() const { return static_cast<int>(slices_.size()) >= k_; }

  /// Slices in descending score order.
  const std::vector<Slice>& Slices() const { return slices_; }

  /// Replaces the held slices wholesale (checkpoint resume). The input must
  /// already be in descending score order with at most K entries; violations
  /// abort (corrupt checkpoints are rejected by the loader's checksum before
  /// reaching here).
  void Restore(std::vector<Slice> slices);

 private:
  int k_;
  int64_t min_support_;
  std::vector<Slice> slices_;  // kept sorted descending by score
};

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_TOPK_H_
