# Empty dependencies file for bench_table2_criteo.
# This may be replaced when dependencies are built.
