#ifndef SLICELINE_CORE_SCORING_H_
#define SLICELINE_CORE_SCORING_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace sliceline::core {

/// Evaluates the paper's scoring function (Equation 1)
///
///   sc = alpha * ((se / |S|) / e_bar - 1) - (1 - alpha) * (n / |S| - 1)
///
/// for a fixed dataset (n rows, average error e_bar) and weight alpha.
class ScoringContext {
 public:
  ScoringContext(int64_t n, double total_error, double alpha);

  int64_t n() const { return n_; }
  double total_error() const { return total_error_; }
  double average_error() const { return average_error_; }
  double alpha() const { return alpha_; }

  /// Score of a slice with `size` rows and total error `error_sum`. Empty
  /// slices score -infinity (the paper treats them as "assumed negative").
  double Score(int64_t size, double error_sum) const;

  /// Vectorized scoring (Equation 5).
  std::vector<double> ScoreAll(const std::vector<double>& sizes,
                               const std::vector<double>& error_sums) const;

  static constexpr double kMinusInfinity =
      -std::numeric_limits<double>::infinity();

 private:
  int64_t n_;
  double total_error_;
  double average_error_;
  double alpha_;
};

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_SCORING_H_
