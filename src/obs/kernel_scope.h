#ifndef SLICELINE_OBS_KERNEL_SCOPE_H_
#define SLICELINE_OBS_KERNEL_SCOPE_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::obs {

/// Pre-registered handles for one kernel's metrics: call count and a
/// duration histogram. Get() registers on first use and is intended to be
/// cached in a function-local static, so the per-call cost is the enabled
/// check only.
struct KernelMetrics {
  Counter* calls;
  Histogram* seconds;
  const char* span_name;

  /// Registers (once) "kernel/<name>/calls" and "kernel/<name>/seconds" in
  /// the default registry. `name` must be a string literal.
  static KernelMetrics& Get(const char* name);
};

/// RAII measurement of one kernel invocation: bumps the call counter,
/// observes the wall time, and (when tracing is on) records a span. When
/// observability is disabled the constructor is one relaxed load + branch.
class KernelScope {
 public:
  explicit KernelScope(KernelMetrics& metrics)
      : metrics_(metrics),
        metrics_active_(MetricsEnabled()),
        trace_active_(TraceRecorder::Default()->enabled()) {
    if (metrics_active_ || trace_active_) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~KernelScope() {
    if (!metrics_active_ && !trace_active_) return;
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - start_).count();
    if (metrics_active_) {
      metrics_.calls->Increment();
      metrics_.seconds->Observe(seconds);
    }
    if (trace_active_) {
      TraceEvent event;
      event.name = metrics_.span_name;
      event.category = "kernel";
      event.phase = 'X';
      event.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        start_.time_since_epoch())
                        .count();
      event.dur_us = static_cast<int64_t>(seconds * 1e6);
      event.tid = TraceRecorder::ThreadId();
      TraceRecorder::Default()->Record(event);
    }
  }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  KernelMetrics& metrics_;
  bool metrics_active_;
  bool trace_active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sliceline::obs

/// Drops per-invocation instrumentation into a kernel function body:
///   SLICELINE_KERNEL_SCOPE("ColSums");
/// Registration happens once per call site (function-local static); each
/// call then costs two relaxed loads when observability is off.
#ifdef SLICELINE_OBS_DISABLED
#define SLICELINE_KERNEL_SCOPE(name_literal) \
  do {                                       \
  } while (false)
#else
#define SLICELINE_KERNEL_SCOPE(name_literal)                        \
  static ::sliceline::obs::KernelMetrics& sliceline_kernel_metrics = \
      ::sliceline::obs::KernelMetrics::Get(name_literal);            \
  ::sliceline::obs::KernelScope sliceline_kernel_scope(              \
      sliceline_kernel_metrics)
#endif

#endif  // SLICELINE_OBS_KERNEL_SCOPE_H_
