#ifndef SLICELINE_CORE_BOUNDS_H_
#define SLICELINE_CORE_BOUNDS_H_

#include <cstdint>

#include "core/scoring.h"

namespace sliceline::core {

/// Upper bounds inherited from a candidate's parents (Section 3.1): the
/// minimum parent size, minimum parent total error, and minimum parent
/// maximum-tuple-error.
struct ParentBounds {
  int64_t size_ub = 0;      ///< ceil(|S|) = min over parents of |S_p|
  double error_ub = 0.0;    ///< min over parents of se_p
  double max_error_ub = 0.0;///< min over parents of sm_p
  int parents = 0;          ///< np: number of enumerated (non-pruned) parents

  /// Accumulates another parent into the minima.
  void AddParent(int64_t size, double error_sum, double max_error) {
    if (parents == 0) {
      size_ub = size;
      error_ub = error_sum;
      max_error_ub = max_error;
    } else {
      if (size < size_ub) size_ub = size;
      if (error_sum < error_ub) error_ub = error_sum;
      if (max_error < max_error_ub) max_error_ub = max_error;
    }
    ++parents;
  }
};

/// Upper bound on the score of any slice reachable below a candidate with
/// the given parent bounds (Equation 3). The bound maximizes the score over
/// slice sizes s in [sigma, size_ub] with the size-dependent error bound
/// se(s) = min(error_ub, s * max_error_ub). The maximum is attained at one
/// of the "interesting points" sigma, error_ub / max_error_ub, or size_ub;
/// all three are evaluated. Returns -infinity when the feasible interval is
/// empty (size_ub < sigma).
double UpperBoundScore(const ScoringContext& context, int64_t sigma,
                       const ParentBounds& bounds);

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_BOUNDS_H_
