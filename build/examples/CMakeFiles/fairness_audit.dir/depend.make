# Empty dependencies file for fairness_audit.
# This may be replaced when dependencies are built.
