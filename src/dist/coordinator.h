#ifndef SLICELINE_DIST_COORDINATOR_H_
#define SLICELINE_DIST_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "core/evaluator.h"
#include "core/sliceline.h"
#include "dist/distributed_evaluator.h"
#include "dist/partition.h"
#include "obs/json_parse.h"
#include "obs/trace_merge.h"
#include "serve/worker_protocol.h"

namespace sliceline::dist {

/// Address of one sliceline_worker process: a Unix-domain socket path, or a
/// loopback TCP port when the path is empty.
struct WorkerEndpoint {
  std::string unix_socket;
  int tcp_port = 0;
};

/// Configuration of the real (socket) coordinator. The fault-tolerance
/// knobs mirror DistOptions, re-targeted from simulated fault draws at real
/// I/O: timeouts detect dead or wedged workers, the retry budget bounds how
/// long a worker may misbehave before it is declared lost, and losses past
/// max_lost_fraction degrade the run to the local evaluator.
struct RemoteDistOptions {
  std::vector<WorkerEndpoint> endpoints;

  int connect_timeout_ms = 1000;   ///< per connect() attempt
  int request_timeout_ms = 5000;   ///< round-trip deadline; expiry = transient
  /// An eval_block in flight longer than this is a straggler: a speculative
  /// backup copy is dispatched to an idle survivor and the first valid
  /// response wins.
  int straggler_after_ms = 1000;
  /// Idle connected workers are probed at this period so a silently dead
  /// worker is noticed before work is routed to it.
  int heartbeat_interval_ms = 500;

  /// Consecutive transient failures a task tolerates on one worker before
  /// that worker is declared lost (its shards reshard onto survivors and
  /// the task restarts its budget there).
  int max_retries = 3;
  /// Real exponential backoff before retry k (1-based):
  /// backoff_base_seconds * backoff_multiplier^(k-1), applied per worker
  /// link so healthy links keep flowing while one backs off.
  double backoff_base_seconds = 0.05;
  double backoff_multiplier = 2.0;
  bool speculative_execution = true;
  /// Lost-worker fraction beyond which the run degrades to single-node.
  double max_lost_fraction = 0.5;

  /// Largest slice block per eval_block request; big sets are split so a
  /// lost request forfeits bounded work.
  int64_t max_block_slices = 256;
  /// Target cells (rows x features) per load_shard chunk; keeps every
  /// shard-transfer line well under kWorkerMaxLineBytes.
  int64_t load_chunk_cells = 1 << 16;

  /// Nonzero enables fleet tracing: every worker request carries this
  /// distributed-trace id (plus the round number as the parent span),
  /// workers record spans while handling our requests, and the coordinator
  /// drains them back -- with metrics-counter deltas -- via get_spans at
  /// round boundaries (see TakeObsBundle()).
  uint64_t trace_id = 0;
};

/// Slice-evaluation backend over real sliceline_worker processes: each
/// worker owns a row shard of the input (shipped once over the worker
/// protocol and fingerprint-checked on reconnect), every Evaluate()
/// broadcasts candidate blocks to the shard owners, and the gathered
/// partial (ss, se, sm) vectors are merged in shard order -- the same
/// aggregation as the simulated DistributedSliceEvaluator, so results are
/// bit-identical to it (and to a single-node run whenever the error values
/// make FP addition order-independent, e.g. the dyadic rationals the chaos
/// suite uses).
///
/// The PR 1 fault model applies to real sockets: I/O errors and round-trip
/// timeouts are transient failures retried with per-link exponential
/// backoff; a worker that exhausts a task's retry budget is lost and its
/// shards reshard onto survivors (re-shipping as needed); stragglers get
/// speculative backups; payloads are checksum- and invariant-validated; and
/// losses past max_lost_fraction degrade the run to the local evaluator
/// (recorded in DistFaultStats::fallback_local and, via
/// RunSliceLineRemote, in RunOutcome::dist_fallback_local). Shard
/// boundaries never change, so recovery never perturbs the result.
class RemoteSliceEvaluator : public core::EvaluatorBackend {
 public:
  /// Validates inputs, materializes one row shard per endpoint, connects
  /// and enlists every worker, ships the shards, and merges the workers'
  /// level-1 statistics. Worker setup failures follow the fault model
  /// (retry -> lose -> reshard -> degrade), so Create only fails on invalid
  /// input, never on a flaky cluster.
  static StatusOr<std::unique_ptr<RemoteSliceEvaluator>> Create(
      const data::IntMatrix& x0, const std::vector<double>& errors,
      const RemoteDistOptions& options);

  ~RemoteSliceEvaluator() override;

  StatusOr<core::EvalResult> Evaluate(
      const core::SliceSet& set,
      const core::SliceLineConfig& config) const override;

  const std::vector<int64_t>& basic_sizes() const override {
    return basic_sizes_;
  }
  const std::vector<double>& basic_error_sums() const override {
    return basic_error_sums_;
  }
  const std::vector<double>& basic_max_errors() const override {
    return basic_max_errors_;
  }
  int64_t n() const override { return n_; }
  double total_error() const override { return total_error_; }
  const data::FeatureOffsets& offsets() const override { return offsets_; }

  int workers() const { return static_cast<int>(links_.size()); }
  int alive_workers() const { return alive_count_; }
  const DistCostStats& cost() const { return cost_; }
  const DistFaultStats& faults() const { return faults_; }
  /// Content fingerprint shipped in every shard-addressed request.
  const std::string& dataset_hash() const { return dataset_hash_; }

  /// Moves out everything collected for the fleet trace and run report:
  /// per-worker spans (steady-clock offsets estimated from the minimum-RTT
  /// now_us round-trip samples), per-worker counter deltas, and the
  /// coordinator's cost/fault numbers as flat report sections. Meaningful
  /// after the run; empty worker list when tracing was off.
  obs::DistObsBundle TakeObsBundle();

  /// Test hook invoked at the start of every Evaluate() with its round
  /// number -- the chaos harness kills / suspends / restarts worker
  /// processes here, i.e. exactly at level boundaries.
  void set_round_hook(std::function<void(int64_t)> hook) {
    round_hook_ = std::move(hook);
  }

 private:
  /// Coordinator-side state of one worker connection.
  struct Link {
    WorkerEndpoint endpoint;
    SocketConnection conn;
    bool connected = false;
    bool alive = true;
    std::string session;          ///< last enlisted worker session
    std::set<int64_t> loaded;     ///< shards confirmed loaded this session
    double ready_at = 0.0;        ///< backoff gate (monotonic seconds)
    double last_heartbeat = 0.0;  ///< last successful exchange
    int64_t next_request = 0;     ///< correlation-id counter
  };

  RemoteSliceEvaluator(const data::IntMatrix& x0,
                       const std::vector<double>& errors,
                       const RemoteDistOptions& options);

  /// Connects, enlists, ships shards, and merges basic statistics.
  void SetupCluster();
  /// Switches to (or continues on) the degraded single-node path.
  StatusOr<core::EvalResult> EvaluateDegraded(
      const core::SliceSet& set, const core::SliceLineConfig& config) const;
  /// Builds the local fallback evaluator and sources the level-1 statistics
  /// from it (setup-time degradation, before stats were merged).
  void DegradeSetup();

  /// Synchronous request/response on one link; validates the ok/error
  /// shape and the echoed correlation id, and accounts wire bytes.
  StatusOr<obs::JsonValue> RoundTrip(Link& link, serve::WorkerRequest request,
                                     int timeout_ms) const;
  /// Connects + enlists if needed; a changed worker session (process
  /// restart) invalidates every shard the coordinator believed loaded.
  Status EnsureReady(Link& link) const;
  /// has_shard probe, then chunked load_shard transfer if needed.
  Status EnsureShardLoaded(Link& link, int64_t shard) const;

  /// Marks a worker permanently lost and reshards its shards onto
  /// survivors. Returns false when the loss crosses max_lost_fraction (the
  /// caller must degrade).
  bool LoseWorker(size_t worker) const;
  void ReshardLostWorkers() const;

  /// get_spans round-trip on worker `w`: appends trace-matching spans and
  /// (unless `baseline`) counter deltas to link_obs_[w]. In baseline mode
  /// the current counter values only (re)set the per-session baseline --
  /// run at the end of setup so pre-existing counts of a reused worker are
  /// not attributed to this job.
  Status CollectWorkerObs(size_t w, bool baseline) const;
  /// Best-effort get_spans sweep over the connected fleet (round boundary).
  void CollectRoundObs() const;

  RemoteDistOptions options_;
  data::FeatureOffsets offsets_;
  std::vector<Shard> shards_;  ///< coordinator copies; re-shipped on demand
  std::string dataset_hash_;
  int64_t n_ = 0;
  double total_error_ = 0.0;
  std::vector<int64_t> basic_sizes_;
  std::vector<double> basic_error_sums_;
  std::vector<double> basic_max_errors_;

  /// Full input copy backing the graceful-degradation path.
  data::IntMatrix full_x0_;
  std::vector<double> full_errors_;

  std::function<void(int64_t)> round_hook_;

  /// Per-link observability state, parallel to links_. Survives session
  /// changes except the counter baseline (a restarted worker restarts its
  /// counters at zero).
  struct LinkObs {
    std::string session;
    int64_t os_pid = 0;
    int64_t clock_offset_us = 0;  ///< worker steady clock minus ours
    int64_t best_rtt_us = std::numeric_limits<int64_t>::max();
    std::vector<obs::RemoteSpan> spans;
    std::map<std::string, double> counter_deltas;
    std::map<std::string, double> counter_baseline;
  };

  mutable std::vector<Link> links_;
  mutable std::vector<LinkObs> link_obs_;
  mutable std::vector<int> shard_owner_;
  mutable int alive_count_ = 0;
  mutable std::unique_ptr<core::SliceEvaluator> fallback_;
  mutable int64_t next_round_ = 0;
  mutable int64_t eval_slices_accepted_ = 0;
  mutable DistCostStats cost_;
  mutable DistFaultStats faults_;
};

/// Runs the full SliceLine enumeration against real worker processes;
/// mirrors RunSliceLineDistributed (cost/fault stats out-params, outcome
/// records cluster degradation).
StatusOr<core::SliceLineResult> RunSliceLineRemote(
    const data::IntMatrix& x0, const std::vector<double>& errors,
    const core::SliceLineConfig& config, const RemoteDistOptions& options,
    DistCostStats* cost_out = nullptr, DistFaultStats* faults_out = nullptr,
    obs::DistObsBundle* obs_out = nullptr);

}  // namespace sliceline::dist

#endif  // SLICELINE_DIST_COORDINATOR_H_
