#!/usr/bin/env bash
# Golden-file regression test for sliceline_cli.
#
# Part 1 runs the CLI on the checked-in golden_input.csv (a 120-row
# regression dataset with a planted f1=a AND f2=x problem conjunction a
# linear model cannot express) under a fixed configuration, once per engine,
# and diffs the output against golden_expected.txt. Timings and the input
# path are run-dependent and get normalized; everything else — row counts,
# trained mean error, every reported slice with its score/size/error stats,
# the per-level enumeration counters, the distributed cost/fault summary —
# must match byte for byte.
#
# Part 2 checks argument validation: every semantically invalid flag value
# must be rejected before any work starts, with a non-zero exit code and a
# specific message on stderr.
#
# Part 3 checks checkpoint/resume end to end: a checkpointed run is
# SIGKILLed mid-enumeration on a generated 40k-row dataset, then re-run
# with --resume; the resumed output must be byte-identical (after timing
# normalization) to a run that was never interrupted.
#
# Part 4 checks the observability outputs: with --metrics-json=- stdout is
# exactly one strict-JSON run report (validated with json_validate, human
# output on stderr), the --trace-out file is valid Chrome-trace JSON, and
# the deterministic report fields (outcome, dist_faults under a fixed fault
# seed) match REPORT_EXPECTED byte for byte.
#
# Part 5 checks the serving daemon end to end: sliceline_server on a Unix
# socket, the golden CSV registered over the wire, the part-1 native
# configuration served twice (second response must be a result-cache hit),
# both responses byte-identical to the CLI's slice report, and a SIGTERM
# drain that exits 0.
#
# Usage: cli_golden_test.sh CLI_BINARY INPUT_CSV EXPECTED_FILE \
#          JSON_VALIDATE_BINARY REPORT_EXPECTED \
#          [SERVER_BINARY CLIENT_BINARY]
set -euo pipefail

cli="$1"
input="$2"
expected="$3"
jv="$4"
report_expected="$5"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

normalize() {
  sed -E \
    -e 's/time=[0-9]+\.[0-9]+s/time=X.XXXs/g' \
    -e 's/in [0-9]+\.[0-9]+s/in X.XXXs/g' \
    -e 's/wall-clock [0-9]+\.[0-9]+s/wall-clock X.XXXs/' \
    -e 's/compute [0-9]+\.[0-9]+s/compute X.XXXs/' \
    -e 's/comm [0-9]+\.[0-9]+s/comm X.XXXs/' \
    -e 's| from .*| from INPUT|'
}

actual="$(
  for engine in native la dist; do
    echo "=== engine: $engine ==="
    "$cli" --csv "$input" --label target --task reg \
           --k 4 --alpha 0.95 --sigma 10 --bins 5 --engine "$engine" \
           --workers 3 --fault-seed 7 --fault-transient 0.2 \
           --fault-straggler 0.2
  done | normalize
)"

if ! diff -u "$expected" <(printf '%s\n' "$actual"); then
  echo "FAIL: sliceline_cli output diverged from $expected" >&2
  echo "(if the change is intentional, regenerate the golden file by" >&2
  echo " piping the normalized output above into it)" >&2
  exit 1
fi
echo "OK: CLI output matches golden transcript"

# --- Part 2: invalid arguments are rejected with a specific message -------

# expect_reject DESCRIPTION STDERR_SUBSTRING CLI_ARGS...
expect_reject() {
  local desc="$1" needle="$2"
  shift 2
  local err
  if err="$("$cli" "$@" 2>&1 >/dev/null)"; then
    echo "FAIL: $desc: expected non-zero exit, got success" >&2
    exit 1
  fi
  if ! grep -qF -- "$needle" <<<"$err"; then
    echo "FAIL: $desc: stderr does not mention '$needle'" >&2
    printf '%s\n' "$err" >&2
    exit 1
  fi
}

valid=(--csv "$input" --label target)
expect_reject "missing --csv/--label" "--csv and --label are required"
expect_reject "nonexistent csv" "--csv path does not exist" \
  --csv "$workdir/no_such_file.csv" --label target
expect_reject "zero k" "--k must be positive" "${valid[@]}" --k 0
expect_reject "negative k" "--k must be positive" "${valid[@]}" --k -3
expect_reject "alpha above 1" "--alpha must be in (0, 1]" \
  "${valid[@]}" --alpha 1.5
expect_reject "alpha zero" "--alpha must be in (0, 1]" \
  "${valid[@]}" --alpha 0
expect_reject "negative sigma" "--sigma must be >= 0" \
  "${valid[@]}" --sigma -1
expect_reject "negative max-level" "--max-level must be >= 0" \
  "${valid[@]}" --max-level -2
expect_reject "zero bins" "--bins must be positive" "${valid[@]}" --bins 0
expect_reject "unknown task" "--task must be" "${valid[@]}" --task cluster
expect_reject "unknown engine" "--engine must be" "${valid[@]}" --engine gpu
expect_reject "zero workers for dist" "--workers must be >= 1" \
  "${valid[@]}" --engine dist --workers 0
expect_reject "negative deadline" "--deadline-ms must be >= 0" \
  "${valid[@]}" --deadline-ms -5
expect_reject "negative memory budget" "--memory-budget-mb must be >= 0" \
  "${valid[@]}" --memory-budget-mb -1
expect_reject "resume without checkpoint dir" \
  "--resume requires --checkpoint-dir" "${valid[@]}" --resume
expect_reject "checkpoint dir is not a directory" \
  "--checkpoint-dir is not a directory" \
  "${valid[@]}" --checkpoint-dir "$workdir/missing_dir"
expect_reject "unknown flag" "unknown argument" "${valid[@]}" --frobnicate
echo "OK: invalid arguments rejected with specific messages"

# --- Part 3: SIGKILL mid-enumeration, then --resume ----------------------

# Generate a dataset whose enumeration takes ~2s (release build): 50k rows,
# 10 categorical features with pairwise-interaction error the linear model
# cannot express, so levels 3-4 stay alive and the kill below lands
# mid-enumeration after at least one level has been checkpointed. The MINSTD
# LCG keeps the dataset — and therefore the whole transcript — reproducible.
big="$workdir/big.csv"
awk 'BEGIN {
  print "f1,f2,f3,f4,f5,f6,f7,f8,f9,f10,target"
  s = 20240805
  for (i = 0; i < 50000; i++) {
    v = ""
    for (j = 1; j <= 10; j++) {
      s = (s * 48271) % 2147483647
      f[j] = s % 8
      v = v sprintf("%c%d,", 96 + j, f[j])
    }
    s = (s * 48271) % 2147483647
    y = 100 * (f[1] == f[2]) + 60 * (f[3] == f[4]) \
        + 40 * (f[5] == f[6]) + s % 10
    printf "%s%d\n", v, y
  }
}' > "$big"

run_big=(--csv "$big" --label target --task reg --k 50 --alpha 0.99
         --sigma 20 --max-level 5 --engine native)

"$cli" "${run_big[@]}" | normalize > "$workdir/reference.txt"

ckpt="$workdir/ckpt"
mkdir "$ckpt"
"$cli" "${run_big[@]}" --checkpoint-dir "$ckpt" \
  > "$workdir/victim.txt" 2>&1 &
victim=$!
sleep 0.5
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null && killed=no || killed=yes

# Whether or not the SIGKILL landed mid-run (it almost always does at this
# dataset size), the resumed invocation must reproduce the uninterrupted
# output bit for bit: from a mid-level checkpoint it continues, from a
# complete or absent checkpoint it re-runs — both paths are deterministic.
"$cli" "${run_big[@]}" --checkpoint-dir "$ckpt" --resume \
  | normalize > "$workdir/resumed.txt"
if ! diff -u "$workdir/reference.txt" "$workdir/resumed.txt"; then
  echo "FAIL: resumed run diverged from uninterrupted run" >&2
  echo "(victim killed mid-run: $killed)" >&2
  exit 1
fi
echo "OK: post-SIGKILL --resume matches uninterrupted run (killed=$killed)"

# --- Part 4: machine-readable observability outputs ----------------------

# Same fixed configuration as part 1's dist engine, so the fault counters
# are deterministic. Exercises the --flag=value spelling on purpose.
run_obs=(--csv "$input" --label target --task reg --k 4 --alpha=0.95
         --sigma 10 --bins 5 --engine=dist --workers 3 --fault-seed 7
         --fault-transient 0.2 --fault-straggler 0.2)

"$cli" "${run_obs[@]}" --metrics-json=- --trace-out "$workdir/trace.json" \
  > "$workdir/report.json" 2> "$workdir/human.txt"

# stdout purity: the report must be the only thing on stdout, and it must
# be strict JSON.
if ! "$jv" "$workdir/report.json"; then
  echo "FAIL: --metrics-json=- stdout is not one strict-JSON document" >&2
  head -c 400 "$workdir/report.json" >&2
  exit 1
fi
# ...while the human-readable transcript moved to stderr intact.
if ! grep -q "fault recovery:" "$workdir/human.txt"; then
  echo "FAIL: human output did not move to stderr under --metrics-json=-" >&2
  exit 1
fi

# The trace file is valid JSON with the Chrome trace-event envelope and at
# least one span from the instrumented engines.
if ! "$jv" "$workdir/trace.json"; then
  echo "FAIL: --trace-out file is not strict JSON" >&2
  exit 1
fi
grep -q '"traceEvents"' "$workdir/trace.json" || {
  echo "FAIL: trace file lacks the traceEvents envelope" >&2; exit 1; }
grep -q '"name":"dist/evaluate_round"' "$workdir/trace.json" || {
  echo "FAIL: trace file lacks the dist/evaluate_round span" >&2; exit 1; }

# Golden diff of the deterministic report fields: the structured RunOutcome
# and the fault-recovery counters (fixed seed => fixed values). Timings and
# registry gauges are run-dependent and excluded.
{
  grep -o '"outcome":{[^}]*}' "$workdir/report.json"
  grep -o '"dist_faults":{[^}]*}' "$workdir/report.json"
} > "$workdir/report_fields.txt"
if ! diff -u "$report_expected" "$workdir/report_fields.txt"; then
  echo "FAIL: deterministic report fields diverged from $report_expected" >&2
  exit 1
fi

# --metrics-json to a file keeps human output on stdout, and --log-level
# filters stderr: an error-level run must not emit info-level lines.
"$cli" "${run_obs[@]}" --metrics-json "$workdir/report2.json" \
  --log-level=error > "$workdir/human2.txt" 2> "$workdir/log2.txt"
"$jv" "$workdir/report2.json" || {
  echo "FAIL: --metrics-json FILE is not strict JSON" >&2; exit 1; }
grep -q "fault recovery:" "$workdir/human2.txt" || {
  echo "FAIL: human output left stdout without --metrics-json=-" >&2
  exit 1; }

expect_reject "bad log level" "--log-level must be" \
  "${valid[@]}" --log-level chatty
echo "OK: observability outputs are valid and deterministic"

# --- Part 5: server round-trip over a Unix-domain socket ------------------

# Starts sliceline_server on a Unix socket, registers the golden CSV,
# runs the part-1 native configuration through the wire twice, and checks
# that (a) both responses render bit-for-bit the same slice report as
# sliceline_cli on the same data and config — the protocol round-trips
# doubles exactly — (b) the second response is a cache hit, and (c) SIGTERM
# drains and exits 0. Skipped when the server/client binaries are not
# passed (old five-argument invocations).
server="${6:-}"
client="${7:-}"
if [[ -n "$server" && -n "$client" ]]; then
  sock="$workdir/serve.sock"
  "$server" --socket "$sock" --workers 2 > "$workdir/server.log" 2>&1 &
  server_pid=$!
  trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
  for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    sleep 0.05
  done
  [[ -S "$sock" ]] || {
    echo "FAIL: server did not open $sock" >&2
    cat "$workdir/server.log" >&2
    exit 1
  }

  "$client" --socket "$sock" register --name golden --csv "$input" \
      --label target --bins 5 > "$workdir/register.json"
  grep -q '"already_registered":false' "$workdir/register.json" || {
    echo "FAIL: register_dataset did not report a fresh registration" >&2
    cat "$workdir/register.json" >&2
    exit 1
  }

  find_args=(find --dataset golden --k 4 --alpha 0.95 --sigma 10)
  "$client" --socket "$sock" "${find_args[@]}" \
      > "$workdir/served1.txt" 2> "$workdir/served1.err"
  "$client" --socket "$sock" "${find_args[@]}" \
      > "$workdir/served2.txt" 2> "$workdir/served2.err"

  grep -q 'cache_hit=false' "$workdir/served1.err" || {
    echo "FAIL: first served find was not a cache miss" >&2
    cat "$workdir/served1.err" >&2; exit 1; }
  grep -q 'cache_hit=true' "$workdir/served2.err" || {
    echo "FAIL: repeated served find did not hit the result cache" >&2
    cat "$workdir/served2.err" >&2; exit 1; }

  # The CLI's slice report for the same data and config (its read/train
  # header lines have no wire counterpart and are stripped).
  "$cli" --csv "$input" --label target --task reg --k 4 --alpha 0.95 \
      --sigma 10 --bins 5 --engine native \
    | sed -n '/^Top-/,$p' | normalize > "$workdir/cli_reference.txt"
  normalize < "$workdir/served1.txt" > "$workdir/served1.norm"
  normalize < "$workdir/served2.txt" > "$workdir/served2.norm"
  if ! diff -u "$workdir/cli_reference.txt" "$workdir/served1.norm"; then
    echo "FAIL: served result diverged from the CLI on the same config" >&2
    exit 1
  fi
  if ! diff -u "$workdir/served1.norm" "$workdir/served2.norm"; then
    echo "FAIL: cached served result diverged from the computed one" >&2
    exit 1
  fi

  # SIGTERM drain: the server must exit 0 on its own.
  kill -TERM "$server_pid"
  server_rc=0
  wait "$server_pid" || server_rc=$?
  if [[ "$server_rc" -ne 0 ]]; then
    echo "FAIL: server exited $server_rc after SIGTERM (want 0)" >&2
    cat "$workdir/server.log" >&2
    exit 1
  fi
  echo "OK: server round-trip matches the CLI, caches, and drains cleanly"
fi
