#ifndef SLICELINE_LINALG_BITMAP_H_
#define SLICELINE_LINALG_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sliceline::linalg {

/// Word padding of every packed bitmap: buffers are rounded up to a multiple
/// of 8 x 64-bit words (one AVX-512 vector) so the vectorized kernels never
/// need a scalar tail loop. Padding words beyond the row count are zero and
/// stay zero under intersection, so popcounts and masked reductions over the
/// padded range are exact.
inline constexpr int64_t kBitmapWordPad = 8;

/// Number of 64-bit words backing a bitmap over `rows` rows, padded to a
/// multiple of kBitmapWordPad.
inline int64_t BitmapWords(int64_t rows) {
  const int64_t raw = (rows + 63) / 64;
  return (raw + kBitmapWordPad - 1) / kBitmapWordPad * kBitmapWordPad;
}

/// A packed row set: bit r of word r/64 is row r. The unit the SIMD
/// evaluation kernels (linalg/kernels_simd.h) operate on.
class Bitmap {
 public:
  Bitmap() : rows_(0) {}
  explicit Bitmap(int64_t rows)
      : rows_(rows), words_(static_cast<size_t>(BitmapWords(rows)), 0) {}

  int64_t rows() const { return rows_; }
  /// Padded word count (a multiple of kBitmapWordPad).
  int64_t words() const { return static_cast<int64_t>(words_.size()); }
  const uint64_t* data() const { return words_.data(); }
  uint64_t* data() { return words_.data(); }

  void Set(int64_t r) { words_[r >> 6] |= uint64_t{1} << (r & 63); }
  void Clear(int64_t r) { words_[r >> 6] &= ~(uint64_t{1} << (r & 63)); }
  bool Test(int64_t r) const {
    return (words_[r >> 6] >> (r & 63)) & uint64_t{1};
  }

  /// Scalar reference popcount (the SIMD kernels are differentially tested
  /// against this).
  int64_t PopCount() const;

  /// Set rows in ascending order (unpack; inverse of FromRows).
  std::vector<int64_t> SetRows() const;

  /// Packs a sorted-or-not list of distinct row ids into a bitmap.
  static Bitmap FromRows(int64_t rows, const std::vector<int64_t>& set_rows);

  bool operator==(const Bitmap& other) const = default;

 private:
  int64_t rows_;
  std::vector<uint64_t> words_;
};

/// Per-one-hot-column packed row bitmaps over a fixed row space — the
/// bit-packed view of the paper's X matrix that the SIMD evaluation path
/// intersects instead of scanning inverted lists. Columns are built lazily
/// (only columns that candidate slices actually touch are materialized,
/// which keeps ultra-wide one-hot spaces affordable) and cached for the
/// dataset's lifetime, so each column is packed exactly once.
///
/// Thread-compatibility contract: Build calls must be serialized by the
/// caller (the evaluator's mutex-guarded pre-pass); Get/Has are safe to call
/// concurrently once the columns they name are built, because built buffers
/// are never moved or mutated.
class ColumnBitmaps {
 public:
  ColumnBitmaps(int64_t rows, int64_t num_columns)
      : rows_(rows), num_columns_(num_columns), words_(BitmapWords(rows)) {}

  int64_t rows() const { return rows_; }
  int64_t num_columns() const { return num_columns_; }
  /// Padded words per column (a multiple of kBitmapWordPad).
  int64_t words() const { return words_; }
  /// Columns materialized so far.
  int64_t built() const { return static_cast<int64_t>(columns_.size()); }
  int64_t memory_bytes() const {
    return built() * words_ * static_cast<int64_t>(sizeof(uint64_t));
  }

  bool Has(int64_t col) const { return columns_.count(col) != 0; }

  /// Packs the `count` row ids of column `col` (its inverted list) into the
  /// column's bitmap; no-op if already built. Returns the packed words.
  const uint64_t* Build(int64_t col, const int32_t* row_ids, int64_t count);

  /// Packed words of a built column; nullptr when absent.
  const uint64_t* Get(int64_t col) const {
    auto it = columns_.find(col);
    return it == columns_.end() ? nullptr : it->second.data();
  }

 private:
  int64_t rows_;
  int64_t num_columns_;
  int64_t words_;
  std::unordered_map<int64_t, std::vector<uint64_t>> columns_;
};

}  // namespace sliceline::linalg

#endif  // SLICELINE_LINALG_BITMAP_H_
