// The slice-finding daemon. Listens on a Unix-domain socket and/or a
// loopback TCP port for newline-delimited strict-JSON requests (see
// src/serve/protocol.h), serves GET /metrics in Prometheus text format on
// the same listeners, and drains gracefully on SIGTERM/SIGINT: running and
// queued jobs finish, new work is refused, the trace is flushed, exit 0.
//
// Usage:
//   sliceline_server [--socket PATH] [--port N] [--workers N]
//                    [--max-queue N] [--memory-budget-mb MB]
//                    [--cache-capacity N] [--max-connections N]
//                    [--default-deadline-ms MS] [--trace-out PATH]
//                    [--worker-socket PATH]... [--worker-port N]...
//                    [--no-fleet-trace]
//                    [--log-level debug|info|warn|error]
//
// At least one of --socket / --port is required; --port 0 binds a
// kernel-assigned port. Once listening, one line per endpoint is printed to
// stdout ("READY port=N" / "READY socket=PATH") so wrapper scripts can wait
// for startup and discover the bound port.
//
// --worker-socket / --worker-port (repeatable) name running
// sliceline_worker processes; when at least one is given, find_slices
// accepts engine "remote" and runs the distributed coordinator against that
// fleet, with per-job distributed traces retrievable via the client's
// `trace <job>` subcommand.
#include <csignal>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "dist/coordinator.h"
#include "serve/server.h"

namespace {

struct ServerCliOptions {
  sliceline::serve::ServerOptions server;
  std::vector<sliceline::dist::WorkerEndpoint> worker_endpoints;
  std::string log_level = "info";
};

std::atomic<sliceline::serve::Server*> g_server{nullptr};

// Only an atomic store happens here; the actual drain runs on the main
// thread inside Server::Wait().
void HandleSignal(int) {
  sliceline::serve::Server* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestShutdown();
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: sliceline_server [--socket PATH] [--port N] [options]\n"
      "  --socket PATH          listen on a Unix-domain socket\n"
      "  --port N               listen on 127.0.0.1:N (0 = kernel-assigned)\n"
      "  --workers N            job worker threads (default 4)\n"
      "  --max-queue N          admission bound on in-flight jobs (16)\n"
      "  --memory-budget-mb MB  server-wide job memory budget (0 = none)\n"
      "  --cache-capacity N     result-cache entries (128; 0 disables)\n"
      "  --max-connections N    concurrent connections (64)\n"
      "  --default-deadline-ms MS  deadline for requests without one (0)\n"
      "  --trace-out PATH       flush a Chrome trace on shutdown and on\n"
      "                         every server_stats request\n"
      "  --worker-socket PATH   sliceline_worker Unix socket (repeatable;\n"
      "                         enables engine 'remote')\n"
      "  --worker-port N        sliceline_worker loopback TCP port\n"
      "                         (repeatable; enables engine 'remote')\n"
      "  --no-fleet-trace       disable per-job distributed tracing\n"
      "  --log-level LEVEL      debug|info|warn|error (default info)\n"
      "Every flag also accepts --flag=value.\n");
}

bool ParseArgs(int argc, char** argv, ServerCliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* name) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      const char* v = next("--socket");
      if (v == nullptr) return false;
      options->server.unix_socket = v;
    } else if (arg == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      options->server.tcp_port = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return false;
      options->server.workers = std::atoi(v);
    } else if (arg == "--max-queue") {
      const char* v = next("--max-queue");
      if (v == nullptr) return false;
      options->server.max_queue = std::atoi(v);
    } else if (arg == "--memory-budget-mb") {
      const char* v = next("--memory-budget-mb");
      if (v == nullptr) return false;
      options->server.memory_budget_mb = std::atoll(v);
    } else if (arg == "--cache-capacity") {
      const char* v = next("--cache-capacity");
      if (v == nullptr) return false;
      options->server.cache_capacity = std::atoll(v);
    } else if (arg == "--max-connections") {
      const char* v = next("--max-connections");
      if (v == nullptr) return false;
      options->server.max_connections = std::atoi(v);
    } else if (arg == "--default-deadline-ms") {
      const char* v = next("--default-deadline-ms");
      if (v == nullptr) return false;
      options->server.default_deadline_seconds = std::atof(v) / 1e3;
    } else if (arg == "--trace-out") {
      const char* v = next("--trace-out");
      if (v == nullptr) return false;
      options->server.trace_out = v;
    } else if (arg == "--worker-socket") {
      const char* v = next("--worker-socket");
      if (v == nullptr) return false;
      sliceline::dist::WorkerEndpoint endpoint;
      endpoint.unix_socket = v;
      options->worker_endpoints.push_back(std::move(endpoint));
    } else if (arg == "--worker-port") {
      const char* v = next("--worker-port");
      if (v == nullptr) return false;
      sliceline::dist::WorkerEndpoint endpoint;
      endpoint.tcp_port = std::atoi(v);
      if (endpoint.tcp_port <= 0) {
        std::fprintf(stderr, "--worker-port needs a positive port\n");
        return false;
      }
      options->worker_endpoints.push_back(std::move(endpoint));
    } else if (arg == "--no-fleet-trace") {
      options->server.fleet_tracing = false;
    } else if (arg == "--log-level") {
      const char* v = next("--log-level");
      if (v == nullptr) return false;
      options->log_level = v;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerCliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 1;
  }
  if (options.log_level == "debug") {
    sliceline::SetLogLevel(sliceline::LogLevel::kDebug);
  } else if (options.log_level == "warn") {
    sliceline::SetLogLevel(sliceline::LogLevel::kWarning);
  } else if (options.log_level == "error") {
    sliceline::SetLogLevel(sliceline::LogLevel::kError);
  } else {
    sliceline::SetLogLevel(sliceline::LogLevel::kInfo);
  }
  if (options.server.unix_socket.empty() && options.server.tcp_port < 0) {
    std::fprintf(stderr, "need --socket and/or --port\n");
    PrintUsage();
    return 1;
  }
  if (options.server.workers < 1 || options.server.max_queue < 1 ||
      options.server.max_connections < 1) {
    std::fprintf(stderr,
                 "--workers, --max-queue, --max-connections must be >= 1\n");
    return 1;
  }

  if (!options.worker_endpoints.empty()) {
    // Wire the distributed coordinator in as the "remote" engine. The hook
    // runs on scheduler worker threads; RunSliceLineRemote builds a fresh
    // coordinator (connections and all) per job, so jobs do not share
    // mutable cluster state.
    const std::vector<sliceline::dist::WorkerEndpoint> endpoints =
        options.worker_endpoints;
    options.server.remote_engine =
        [endpoints](const sliceline::data::EncodedDataset& dataset,
                    const sliceline::core::SliceLineConfig& config,
                    uint64_t trace_id, sliceline::obs::DistObsBundle* obs_out)
        -> sliceline::StatusOr<sliceline::core::SliceLineResult> {
      sliceline::dist::RemoteDistOptions remote;
      remote.endpoints = endpoints;
      remote.trace_id = trace_id;
      return sliceline::dist::RunSliceLineRemote(
          dataset.x0, dataset.errors, config, remote,
          /*cost_out=*/nullptr, /*faults_out=*/nullptr, obs_out);
    };
  }

  sliceline::serve::Server server(options.server);
  const sliceline::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "startup failed: %s\n", started.message().c_str());
    return 1;
  }
  g_server.store(&server, std::memory_order_release);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  if (server.tcp_port() >= 0) {
    std::printf("READY port=%d\n", server.tcp_port());
  }
  if (!options.server.unix_socket.empty()) {
    std::printf("READY socket=%s\n", options.server.unix_socket.c_str());
  }
  std::fflush(stdout);

  const int exit_code = server.Wait();
  g_server.store(nullptr, std::memory_order_release);
  return exit_code;
}
