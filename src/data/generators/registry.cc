#include <algorithm>
#include <cstdlib>

#include "data/generators/generators.h"

namespace sliceline::data {

namespace internal {

int64_t ResolveRows(const DatasetOptions& options, int64_t default_rows,
                    int64_t min_rows) {
  if (options.rows > 0) return options.rows;
  double scale = 1.0;
  if (const char* env = std::getenv("SLICELINE_DATA_SCALE")) {
    scale = std::atof(env);
    if (scale <= 0.0) scale = 1.0;
  }
  const int64_t rows = static_cast<int64_t>(default_rows * scale);
  return std::max(rows, min_rows);
}

}  // namespace internal

StatusOr<EncodedDataset> MakeDatasetByName(const std::string& name,
                                           const DatasetOptions& options) {
  if (name == "salaries") return MakeSalaries(options);
  if (name == "adult") return MakeAdult(options);
  if (name == "covtype") return MakeCovtype(options);
  if (name == "kdd98") return MakeKdd98(options);
  if (name == "uscensus") return MakeUsCensus(options);
  if (name == "criteo") return MakeCriteo(options);
  return Status::NotFound("unknown dataset '" + name +
                          "' (expected salaries|adult|covtype|kdd98|"
                          "uscensus|criteo)");
}

std::vector<DatasetInfo> ListDatasets() {
  return {
      {"salaries", 397, 397, 5, 27, "Reg."},
      {"adult", 32561, 32561, 14, 162, "2-Class"},
      {"covtype", 29051, 581012, 54, 188, "7-Class"},
      {"kdd98", 9541, 95412, 469, 8378, "Reg."},
      {"uscensus", 49166, 2458285, 68, 378, "4-Class"},
      {"criteo", 100000, 192215183, 39, 75573541, "2-Class"},
  };
}

}  // namespace sliceline::data
