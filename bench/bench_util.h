#ifndef SLICELINE_BENCH_BENCH_UTIL_H_
#define SLICELINE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/generators/generators.h"

namespace sliceline::bench {

/// Global row-count multiplier for the whole harness, set via the
/// SLICELINE_BENCH_SCALE environment variable (default 1.0). Benchmarks
/// print the effective dataset sizes so results are self-describing.
inline double Scale() {
  if (const char* env = std::getenv("SLICELINE_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

/// Loads a generator dataset with the harness scale applied.
inline data::EncodedDataset Load(const std::string& name,
                                 int64_t base_rows = 0) {
  data::DatasetOptions options;
  if (base_rows > 0) {
    options.rows = static_cast<int64_t>(base_rows * Scale());
    if (options.rows < 256) options.rows = 256;
  } else if (Scale() != 1.0) {
    // Apply the scale to the generator default.
    for (const data::DatasetInfo& info : data::ListDatasets()) {
      if (info.name == name) {
        options.rows =
            static_cast<int64_t>(info.default_rows * Scale());
        if (options.rows < 256) options.rows = 256;
      }
    }
  }
  auto ds = data::MakeDatasetByName(name, options);
  if (!ds.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", name.c_str(),
                 ds.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(ds).value();
}

/// Prints a benchmark banner with the paper reference.
inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale=%.3g (set SLICELINE_BENCH_SCALE to change)\n", Scale());
  std::printf("=====================================================\n");
}

}  // namespace sliceline::bench

#endif  // SLICELINE_BENCH_BENCH_UTIL_H_
