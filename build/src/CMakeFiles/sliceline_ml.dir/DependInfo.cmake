
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/error_functions.cc" "src/CMakeFiles/sliceline_ml.dir/ml/error_functions.cc.o" "gcc" "src/CMakeFiles/sliceline_ml.dir/ml/error_functions.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/sliceline_ml.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/sliceline_ml.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/CMakeFiles/sliceline_ml.dir/ml/linear_regression.cc.o" "gcc" "src/CMakeFiles/sliceline_ml.dir/ml/linear_regression.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/sliceline_ml.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/sliceline_ml.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/pipeline.cc" "src/CMakeFiles/sliceline_ml.dir/ml/pipeline.cc.o" "gcc" "src/CMakeFiles/sliceline_ml.dir/ml/pipeline.cc.o.d"
  "/root/repo/src/ml/split.cc" "src/CMakeFiles/sliceline_ml.dir/ml/split.cc.o" "gcc" "src/CMakeFiles/sliceline_ml.dir/ml/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sliceline_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
