#ifndef SLICELINE_STREAM_WATCHER_H_
#define SLICELINE_STREAM_WATCHER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/slice.h"
#include "data/int_matrix.h"
#include "stream/stream_finder.h"

namespace sliceline::stream {

/// Monitoring configuration of one watched dataset.
struct WatchOptions {
  /// Alert when the top slice's score reaches tau.
  double tau = 1.0;
  /// Re-arm only after the score falls below tau - hysteresis, so a score
  /// oscillating around tau fires once per upward crossing, not per append.
  double hysteresis = 0.0;
  /// Sliding window by row count (0 = unbounded). Enforced with slack: rows
  /// are evicted in batches once the buffer holds 2x the window, so the
  /// evaluated window covers between W and 2W of the most recent rows and
  /// appends stay incremental between evictions.
  int64_t window_rows = 0;
  /// Sliding window by wall-clock seconds (0 = unbounded), against the
  /// injected Clock. Same lazy-eviction slack as window_rows.
  double window_seconds = 0.0;
  core::SliceLineConfig config;
  StreamOptions stream;
};

/// A fired tau-crossing.
struct StreamAlert {
  std::string dataset;
  std::string slice_display;
  double score = 0.0;
  int64_t at_rows = 0;       ///< total rows ingested when the alert fired
  double at_seconds = 0.0;   ///< clock reading when the alert fired
  uint64_t fingerprint = 0;  ///< dataset fingerprint chain at fire time
};

/// Sliding-window slice monitor: every append re-runs (incremental) slice
/// finding over the current window and fires an alert exactly once per
/// upward tau-crossing of the top slice's score. Not internally
/// synchronized — callers (the server's watch manager) serialize appends
/// per watched dataset.
class SliceWatcher {
 public:
  /// `clock` is borrowed and must outlive the watcher; nullptr uses the
  /// steady clock. When options.stream.domains is empty the domains are
  /// frozen from the base data at creation and window rebuilds keep using
  /// them, so codes may not exceed the base column maxima.
  static StatusOr<std::unique_ptr<SliceWatcher>> Create(
      std::string dataset, const data::IntMatrix& base_x0,
      const std::vector<double>& base_errors,
      std::vector<std::string> feature_names, WatchOptions options,
      const Clock* clock = nullptr);

  /// Ingests a delta, advances the window, re-runs slice finding, and
  /// returns the alert if this append crossed tau.
  StatusOr<std::optional<StreamAlert>> OnAppend(
      const data::IntMatrix& delta_x0,
      const std::vector<double>& delta_errors);

  const std::string& dataset() const { return dataset_; }
  const WatchOptions& options() const { return options_; }
  bool armed() const { return armed_; }
  double last_score() const { return last_score_; }
  int64_t alerts_fired() const { return alerts_fired_; }
  int64_t evaluations() const { return evaluations_; }
  int64_t window_rebuilds() const { return window_rebuilds_; }
  /// Rows currently in the evaluated window.
  int64_t window_rows() const { return buffer_x0_.rows(); }
  /// Total rows ever ingested (base + appends).
  int64_t total_rows() const { return total_rows_; }
  const StreamingSliceFinder& finder() const { return *finder_; }

 private:
  SliceWatcher(std::string dataset, std::vector<std::string> feature_names,
               WatchOptions options, const Clock* clock)
      : dataset_(std::move(dataset)),
        feature_names_(std::move(feature_names)),
        options_(std::move(options)),
        clock_(clock) {}

  Status RebuildFromTail(int64_t new_start);

  std::string dataset_;
  std::vector<std::string> feature_names_;
  WatchOptions options_;
  const Clock* clock_;

  // The window buffer: all rows currently eligible for evaluation, with
  // their ingest times (ascending).
  data::IntMatrix buffer_x0_;
  std::vector<double> buffer_errors_;
  std::vector<double> buffer_times_;

  std::unique_ptr<StreamingSliceFinder> finder_;
  bool armed_ = true;
  double last_score_ = 0.0;
  int64_t alerts_fired_ = 0;
  int64_t evaluations_ = 0;
  int64_t window_rebuilds_ = 0;
  int64_t total_rows_ = 0;
};

}  // namespace sliceline::stream

#endif  // SLICELINE_STREAM_WATCHER_H_
