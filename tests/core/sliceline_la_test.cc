#include "core/sliceline_la.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exhaustive.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"

namespace sliceline::core {
namespace {

struct RandomInput {
  data::IntMatrix x0;
  std::vector<double> errors;
};

RandomInput MakeRandom(uint64_t seed, int64_t n, int m, int max_dom) {
  Rng rng(seed);
  RandomInput input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) =
          static_cast<int32_t>(rng.NextUint64(1 + rng.NextUint64(max_dom))) +
          1;
    }
  }
  input.errors.resize(n);
  for (auto& e : input.errors) e = rng.NextBool(0.35) ? rng.NextDouble() : 0.0;
  return input;
}

/// Equivalence of the two engines: same top-K, same per-level candidate
/// counts (they implement the identical enumeration with different
/// execution strategies).
class EngineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineEquivalenceTest, LaMatchesNative) {
  RandomInput input = MakeRandom(GetParam() + 500, 300, 6, 4);
  SliceLineConfig config;
  config.k = 6;
  config.alpha = 0.9;
  config.min_support = 12;
  auto native = RunSliceLine(input.x0, input.errors, config);
  auto la = RunSliceLineLA(input.x0, input.errors, config);
  ASSERT_TRUE(native.ok());
  ASSERT_TRUE(la.ok());
  ASSERT_EQ(native->top_k.size(), la->top_k.size());
  for (size_t i = 0; i < native->top_k.size(); ++i) {
    EXPECT_NEAR(native->top_k[i].stats.score, la->top_k[i].stats.score, 1e-9);
    EXPECT_EQ(native->top_k[i].stats.size, la->top_k[i].stats.size);
  }
  ASSERT_EQ(native->levels.size(), la->levels.size());
  for (size_t i = 0; i < native->levels.size(); ++i) {
    EXPECT_EQ(native->levels[i].candidates, la->levels[i].candidates)
        << "level " << i + 1;
    EXPECT_EQ(native->levels[i].valid, la->levels[i].valid)
        << "level " << i + 1;
  }
}

TEST_P(EngineEquivalenceTest, LaMatchesOracle) {
  RandomInput input = MakeRandom(GetParam() + 900, 250, 5, 3);
  SliceLineConfig config;
  config.k = 5;
  config.alpha = 0.95;
  config.min_support = 10;
  auto la = RunSliceLineLA(input.x0, input.errors, config);
  auto oracle = RunExhaustive(input.x0, input.errors, config);
  ASSERT_TRUE(la.ok() && oracle.ok());
  ASSERT_EQ(la->top_k.size(), oracle->top_k.size());
  for (size_t i = 0; i < la->top_k.size(); ++i) {
    EXPECT_NEAR(la->top_k[i].stats.score, oracle->top_k[i].stats.score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST(SliceLineLaTest, BlockSizeDoesNotChangeResults) {
  RandomInput input = MakeRandom(4242, 400, 5, 4);
  SliceLineConfig config;
  config.k = 5;
  config.min_support = 10;
  SliceLineResult reference;
  bool first = true;
  for (int block : {1, 4, 16, 256}) {
    config.eval_block_size = block;
    auto result = RunSliceLineLA(input.x0, input.errors, config);
    ASSERT_TRUE(result.ok());
    if (first) {
      reference = *result;
      first = false;
      continue;
    }
    ASSERT_EQ(result->top_k.size(), reference.top_k.size());
    for (size_t i = 0; i < reference.top_k.size(); ++i) {
      EXPECT_NEAR(result->top_k[i].stats.score,
                  reference.top_k[i].stats.score, 1e-12);
    }
  }
}

TEST(SliceLineLaTest, SalariesMatchesNative) {
  data::DatasetOptions opts;
  opts.rows = 600;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceLineConfig config;
  config.k = 4;
  auto native = RunSliceLine(ds, config);
  auto la = RunSliceLineLA(ds, config);
  ASSERT_TRUE(native.ok() && la.ok());
  ASSERT_EQ(native->top_k.size(), la->top_k.size());
  for (size_t i = 0; i < native->top_k.size(); ++i) {
    EXPECT_EQ(native->top_k[i].predicates, la->top_k[i].predicates);
  }
}

TEST(SliceLineLaTest, ValidatesInputs) {
  RandomInput input = MakeRandom(1, 50, 3, 3);
  SliceLineConfig config;
  config.alpha = -1;
  EXPECT_FALSE(RunSliceLineLA(input.x0, input.errors, config).ok());
  config = SliceLineConfig();
  std::vector<double> wrong(10, 0.1);
  EXPECT_FALSE(RunSliceLineLA(input.x0, wrong, config).ok());
}

TEST(SliceLineLaTest, PerfectModelReturnsNothing) {
  RandomInput input = MakeRandom(2, 100, 3, 3);
  std::fill(input.errors.begin(), input.errors.end(), 0.0);
  auto result = RunSliceLineLA(input.x0, input.errors, SliceLineConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->top_k.empty());
}

}  // namespace
}  // namespace sliceline::core
