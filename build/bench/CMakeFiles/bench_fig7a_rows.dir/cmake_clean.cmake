file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_rows.dir/bench_fig7a_rows.cc.o"
  "CMakeFiles/bench_fig7a_rows.dir/bench_fig7a_rows.cc.o.d"
  "bench_fig7a_rows"
  "bench_fig7a_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
