
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/ablation_test.cc" "tests/CMakeFiles/core_test.dir/core/ablation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ablation_test.cc.o.d"
  "/root/repo/tests/core/bestfirst_test.cc" "tests/CMakeFiles/core_test.dir/core/bestfirst_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/bestfirst_test.cc.o.d"
  "/root/repo/tests/core/bounds_test.cc" "tests/CMakeFiles/core_test.dir/core/bounds_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/bounds_test.cc.o.d"
  "/root/repo/tests/core/candidates_test.cc" "tests/CMakeFiles/core_test.dir/core/candidates_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/candidates_test.cc.o.d"
  "/root/repo/tests/core/contracts_test.cc" "tests/CMakeFiles/core_test.dir/core/contracts_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/contracts_test.cc.o.d"
  "/root/repo/tests/core/evaluator_test.cc" "tests/CMakeFiles/core_test.dir/core/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/evaluator_test.cc.o.d"
  "/root/repo/tests/core/pruning_combinations_test.cc" "tests/CMakeFiles/core_test.dir/core/pruning_combinations_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pruning_combinations_test.cc.o.d"
  "/root/repo/tests/core/report_test.cc" "tests/CMakeFiles/core_test.dir/core/report_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/report_test.cc.o.d"
  "/root/repo/tests/core/scoring_test.cc" "tests/CMakeFiles/core_test.dir/core/scoring_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/scoring_test.cc.o.d"
  "/root/repo/tests/core/slice_analysis_test.cc" "tests/CMakeFiles/core_test.dir/core/slice_analysis_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/slice_analysis_test.cc.o.d"
  "/root/repo/tests/core/sliceline_la_test.cc" "tests/CMakeFiles/core_test.dir/core/sliceline_la_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sliceline_la_test.cc.o.d"
  "/root/repo/tests/core/sliceline_test.cc" "tests/CMakeFiles/core_test.dir/core/sliceline_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sliceline_test.cc.o.d"
  "/root/repo/tests/core/topk_test.cc" "tests/CMakeFiles/core_test.dir/core/topk_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/topk_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sliceline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
