#include "core/sliceline.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/candidates.h"
#include "core/checkpoint.h"
#include "core/evaluator.h"
#include "core/governance.h"
#include "core/scoring.h"
#include "core/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::core {

namespace {

/// Decodes a slice's one-hot columns into (feature, code) predicates.
std::vector<std::pair<int, int32_t>> DecodeColumns(
    const data::FeatureOffsets& offsets, const int64_t* cols, int64_t len) {
  std::vector<std::pair<int, int32_t>> preds;
  preds.reserve(static_cast<size_t>(len));
  for (int64_t k = 0; k < len; ++k) {
    preds.emplace_back(offsets.FeatureOfColumn(cols[k]),
                       offsets.CodeOfColumn(cols[k]));
  }
  return preds;
}

Status ValidateInputs(const data::IntMatrix& x0,
                      const std::vector<double>& errors,
                      const SliceLineConfig& config) {
  if (x0.rows() == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != x0.rows()) {
    return Status::InvalidArgument(
        "error vector size " + std::to_string(errors.size()) +
        " does not match " + std::to_string(x0.rows()) + " rows");
  }
  for (double e : errors) {
    if (!(e >= 0.0) || std::isnan(e)) {
      return Status::InvalidArgument("errors must be non-negative and finite");
    }
  }
  if (!(config.alpha > 0.0 && config.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (config.min_support < 0) {
    return Status::InvalidArgument("min_support must be >= 0");
  }
  return Status::OK();
}

/// Fingerprint of what the backend sees of the dataset (the level-1 view is
/// the full derivation input for every later level), so a checkpoint binds
/// to the data without the engine needing the raw matrix.
uint64_t HashBackendData(const EvaluatorBackend& evaluator) {
  Fnv1a h;
  h.Add64(static_cast<uint64_t>(evaluator.n()));
  h.Add64(static_cast<uint64_t>(evaluator.offsets().total));
  h.AddDouble(evaluator.total_error());
  for (int64_t s : evaluator.basic_sizes()) {
    h.Add64(static_cast<uint64_t>(s));
  }
  for (double e : evaluator.basic_error_sums()) h.AddDouble(e);
  return h.hash();
}

/// Keeps the `cap` candidates with the best upper-bound scores (degradation
/// ladder step 2), preserving the original relative order of the kept rows
/// so the run stays deterministic. Returns the number dropped.
int64_t CapCandidatesByUpperBound(const ScoringContext& context, int64_t sigma,
                                  int64_t cap, SliceSet* cands,
                                  std::vector<ParentBounds>* bounds) {
  const int64_t total = cands->size();
  if (cap <= 0 || total <= cap) return 0;
  std::vector<int64_t> order(static_cast<size_t>(total));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> ub(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    ub[i] = UpperBoundScore(context, sigma, (*bounds)[i]);
  }
  std::nth_element(order.begin(), order.begin() + cap, order.end(),
                   [&ub](int64_t a, int64_t b) {
                     return ub[a] != ub[b] ? ub[a] > ub[b] : a < b;
                   });
  order.resize(static_cast<size_t>(cap));
  std::sort(order.begin(), order.end());
  SliceSet kept;
  std::vector<ParentBounds> kept_bounds;
  kept_bounds.reserve(order.size());
  for (int64_t i : order) {
    kept.Add(cands->Columns(i), cands->Columns(i) + cands->Length(i));
    kept_bounds.push_back((*bounds)[i]);
  }
  *cands = std::move(kept);
  *bounds = std::move(kept_bounds);
  return total - cap;
}

}  // namespace

StatusOr<SliceLineResult> RunSliceLine(const data::IntMatrix& x0,
                                       const std::vector<double>& errors,
                                       const SliceLineConfig& config) {
  SLICELINE_RETURN_NOT_OK(ValidateInputs(x0, errors, config));
  const data::FeatureOffsets offsets = data::ComputeOffsets(x0);
  const SliceEvaluator evaluator(x0, offsets, errors);
  return RunSliceLineWithBackend(evaluator, config);
}

StatusOr<SliceLineResult> RunSliceLineWithBackend(
    const EvaluatorBackend& evaluator, const SliceLineConfig& config) {
  if (!(config.alpha > 0.0 && config.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  Stopwatch total_watch;
  TRACE_SPAN("native/run");

  const data::FeatureOffsets& offsets = evaluator.offsets();
  const int64_t n = evaluator.n();
  const int64_t sigma = ResolveMinSupport(config, n);
  const ScoringContext context(n, evaluator.total_error(), config.alpha);

  // Install the run's memory budget as the thread-local ambient budget so
  // matrix allocations inside this engine (and the evaluator it drives)
  // charge it.
  std::optional<ScopedMemoryBudget> scoped_budget;
  if (config.run_context != nullptr &&
      config.run_context->memory_budget() != nullptr) {
    scoped_budget.emplace(config.run_context->memory_budget());
  }

  SliceLineResult result;
  result.min_support = sigma;
  result.average_error = context.average_error();
  if (evaluator.total_error() <= 0.0) {
    // A perfect model has no problematic slices.
    result.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  TopK topk(config.k, sigma);
  const int max_level =
      config.max_level > 0
          ? std::min<int>(config.max_level, offsets.num_features())
          : offsets.num_features();
  GovernanceController gov(config, sigma, max_level);

  const bool checkpointing = !config.checkpoint_dir.empty();
  uint64_t config_hash = 0;
  uint64_t data_hash = 0;
  if (checkpointing) {
    config_hash = HashConfigForCheckpoint(config, sigma, "native");
    data_hash = HashBackendData(evaluator);
  }
  const auto save_checkpoint = [&](int completed_level, const SliceSet& prev,
                                   const EvalResult& prev_stats) {
    CheckpointState state;
    state.engine = "native";
    state.config_hash = config_hash;
    state.data_hash = data_hash;
    state.level = completed_level;
    state.effective_sigma = gov.effective_sigma();
    state.degradation_steps = gov.degradation_steps();
    state.candidates_capped = gov.candidates_capped();
    state.total_evaluated = result.total_evaluated;
    state.levels = result.levels;
    state.topk = topk.Slices();
    state.frontier_ss = prev_stats.sizes;
    state.frontier_se = prev_stats.error_sums;
    state.frontier_sm = prev_stats.max_errors;
    state.frontier = SliceSetToCsr(prev, offsets.total);
    const Status saved = SaveCheckpoint(config.checkpoint_dir, state);
    // A failed save must not kill the run it exists to protect.
    if (!saved.ok()) {
      LOG_WARNING << "checkpoint save failed: " << saved.ToString();
    }
  };

  SliceSet prev;
  EvalResult prev_stats;
  bool resumed = false;
  int start_level = 2;

  if (checkpointing && config.resume &&
      CheckpointFileExists(config.checkpoint_dir)) {
    StatusOr<CheckpointState> loaded = LoadCheckpoint(config.checkpoint_dir);
    if (loaded.ok() && loaded->engine == "native" &&
        loaded->config_hash == config_hash &&
        loaded->data_hash == data_hash) {
      prev = CsrToSliceSet(loaded->frontier);
      prev_stats.sizes = std::move(loaded->frontier_ss);
      prev_stats.error_sums = std::move(loaded->frontier_se);
      prev_stats.max_errors = std::move(loaded->frontier_sm);
      topk.Restore(std::move(loaded->topk));
      result.levels = std::move(loaded->levels);
      result.total_evaluated = loaded->total_evaluated;
      gov.RestoreDegradation(loaded->degradation_steps,
                             loaded->effective_sigma,
                             loaded->candidates_capped);
      start_level = loaded->level + 1;
      resumed = true;
    } else if (!loaded.ok()) {
      LOG_WARNING << "ignoring unusable checkpoint: "
                  << loaded.status().ToString();
    } else {
      LOG_WARNING << "ignoring checkpoint for a different run "
                     "(engine/config/data hash mismatch)";
    }
  }

  Stopwatch level_watch;
  if (!resumed) {
    // -- Level 1: create and score basic slices (Section 4.2). --
    LevelStats level1;
    level1.level = 1;
    level1.candidates = offsets.total;  // all one-hot features considered
    for (int64_t c = 0; c < offsets.total; ++c) {
      const int64_t ss = evaluator.basic_sizes()[c];
      const double se = evaluator.basic_error_sums()[c];
      const bool valid = ss >= sigma && se > 0.0;
      if (valid) ++level1.valid;
      const bool keep = (!config.prune_size || ss >= sigma) && se > 0.0;
      if (!keep) {
        ++level1.pruned;
        continue;
      }
      prev.Add(&c, &c + 1);
      prev_stats.sizes.push_back(static_cast<double>(ss));
      prev_stats.error_sums.push_back(se);
      prev_stats.max_errors.push_back(evaluator.basic_max_errors()[c]);
      const double score = context.Score(ss, se);
      if (score > 0.0 && ss >= sigma) {
        Slice slice;
        slice.predicates = DecodeColumns(offsets, &c, 1);
        slice.stats = {score, se, evaluator.basic_max_errors()[c], ss};
        topk.Offer(std::move(slice));
      }
    }
    level1.seconds = level_watch.ElapsedSeconds();
    obs::RecordLevelMetrics("native", 1, level1.candidates, level1.valid,
                            level1.pruned, level1.seconds);
    result.levels.push_back(level1);
    result.total_evaluated += level1.candidates;
    if (checkpointing) save_checkpoint(1, prev, prev_stats);
  }

  // -- Levels 2..max: enumerate, evaluate, maintain top-K. --
  StopReason stop = StopReason::kNone;
  int stopped_level = 0;
  for (int level = start_level;
       level <= gov.effective_max_level() && prev.size() > 0; ++level) {
    stop = gov.CheckBoundary();
    if (stop != StopReason::kNone) {
      stopped_level = level;
      break;
    }
    gov.MaybeDegrade(level);
    if (level > gov.effective_max_level()) break;

    TRACE_SPAN("native/level", level);
    level_watch.Reset();
    std::vector<ParentBounds> bounds;
    CandidateGenStats gen_stats;
    SliceSet cands;
    {
      TRACE_SPAN("native/candidate_gen", level);
      cands = GeneratePairCandidates(
          prev, prev_stats, level, context, gov.effective_sigma(),
          topk.Threshold(), config, offsets, &bounds, &gen_stats);
    }
    if (cands.size() == 0) {
      LevelStats stats;
      stats.level = level;
      stats.pruned = gen_stats.pruned;
      stats.seconds = level_watch.ElapsedSeconds();
      obs::RecordLevelMetrics("native", stats.level, stats.candidates,
                              stats.valid, stats.pruned, stats.seconds);
      result.levels.push_back(stats);
      break;
    }
    gov.RecordCapped(CapCandidatesByUpperBound(
        context, gov.effective_sigma(), gov.candidate_cap(), &cands, &bounds));

    // Explicit budget charge for the frontier the native engine holds (it
    // allocates flat arrays, not governed matrices).
    const MemoryCharge level_charge(
        cands.total_columns() * static_cast<int64_t>(sizeof(int64_t)) +
        (cands.size() + 1) * static_cast<int64_t>(sizeof(int64_t)) +
        3 * cands.size() * static_cast<int64_t>(sizeof(double)));

    StatusOr<EvalResult> eval_or = evaluator.Evaluate(cands, config);
    if (!eval_or.ok()) {
      if (IsGovernanceStatus(eval_or.status())) {
        stop = StopReasonFromStatus(eval_or.status());
        stopped_level = level;
        break;
      }
      return eval_or.status();
    }
    EvalResult eval = std::move(eval_or).value();

    LevelStats stats;
    stats.level = level;
    stats.candidates = cands.size();
    stats.pruned = gen_stats.pruned;
    for (int64_t i = 0; i < cands.size(); ++i) {
      const int64_t ss = static_cast<int64_t>(eval.sizes[i]);
      const double se = eval.error_sums[i];
      if (ss >= sigma && se > 0.0) ++stats.valid;
      const double score = context.Score(ss, se);
      if (score > 0.0 && ss >= sigma) {
        Slice slice;
        slice.predicates = DecodeColumns(offsets, cands.Columns(i),
                                         cands.Length(i));
        slice.stats = {score, se, eval.max_errors[i], ss};
        topk.Offer(std::move(slice));
      }
    }
    stats.seconds = level_watch.ElapsedSeconds();
    obs::RecordLevelMetrics("native", stats.level, stats.candidates,
                            stats.valid, stats.pruned, stats.seconds);
    result.levels.push_back(stats);
    result.total_evaluated += stats.candidates;

    prev = std::move(cands);
    prev_stats = std::move(eval);
    if (checkpointing) save_checkpoint(level, prev, prev_stats);
  }

  result.top_k = topk.Slices();
  result.outcome = gov.Finish(stop, stopped_level, resumed);
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

StatusOr<SliceLineResult> RunSliceLine(const data::EncodedDataset& dataset,
                                       const SliceLineConfig& config) {
  if (dataset.errors.empty()) {
    return Status::InvalidArgument(
        "dataset has no materialized error vector; train a model via "
        "ml::TrainAndMaterializeErrors or use a generator");
  }
  return RunSliceLine(dataset.x0, dataset.errors, config);
}

}  // namespace sliceline::core
