#ifndef SLICELINE_DATA_CSV_H_
#define SLICELINE_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/frame.h"

namespace sliceline::data {

/// Options for ReadCsv.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// A column is inferred numeric only if every non-missing field parses as a
  /// number; otherwise it is categorical. Missing fields ("" or "?") become
  /// NaN (numeric) or the literal "?" (categorical).
  std::string missing_marker = "?";
};

/// Reads a delimited text file into a Frame, inferring per-column types.
StatusOr<Frame> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV content from a string (testing convenience).
StatusOr<Frame> ParseCsv(const std::string& content,
                         const CsvOptions& options = {});

/// Writes a frame as CSV with a header row.
Status WriteCsv(const Frame& frame, const std::string& path,
                char delimiter = ',');

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_CSV_H_
