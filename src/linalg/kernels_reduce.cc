#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "linalg/kernels.h"
#include "obs/kernel_scope.h"

namespace sliceline::linalg {

std::vector<double> ColSums(const CsrMatrix& m) {
  SLICELINE_KERNEL_SCOPE("ColSums");
  std::vector<double> out(static_cast<size_t>(m.cols()), 0.0);
  const auto& cols = m.col_idx();
  const auto& vals = m.values();
  for (size_t k = 0; k < cols.size(); ++k) out[cols[k]] += vals[k];
  return out;
}

std::vector<double> ColMaxs(const CsrMatrix& m) {
  SLICELINE_KERNEL_SCOPE("ColMaxs");
  const size_t n = static_cast<size_t>(m.cols());
  std::vector<double> out(n, -std::numeric_limits<double>::infinity());
  std::vector<int64_t> counts(n, 0);
  const auto& cols = m.col_idx();
  const auto& vals = m.values();
  for (size_t k = 0; k < cols.size(); ++k) {
    out[cols[k]] = std::max(out[cols[k]], vals[k]);
    ++counts[cols[k]];
  }
  for (size_t j = 0; j < n; ++j) {
    if (counts[j] < m.rows()) out[j] = std::max(out[j], 0.0);
  }
  return out;
}

std::vector<double> RowSums(const CsrMatrix& m) {
  SLICELINE_KERNEL_SCOPE("RowSums");
  std::vector<double> out(static_cast<size_t>(m.rows()), 0.0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const double* vals = m.RowVals(r);
    const int64_t nnz = m.RowNnz(r);
    double acc = 0.0;
    for (int64_t k = 0; k < nnz; ++k) acc += vals[k];
    out[r] = acc;
  }
  return out;
}

std::vector<double> RowMaxs(const CsrMatrix& m) {
  SLICELINE_KERNEL_SCOPE("RowMaxs");
  std::vector<double> out(static_cast<size_t>(m.rows()), 0.0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const double* vals = m.RowVals(r);
    const int64_t nnz = m.RowNnz(r);
    double mx = nnz < m.cols() ? 0.0
                               : -std::numeric_limits<double>::infinity();
    for (int64_t k = 0; k < nnz; ++k) mx = std::max(mx, vals[k]);
    out[r] = nnz == 0 ? 0.0 : mx;
  }
  return out;
}

std::vector<int64_t> RowNnzCounts(const CsrMatrix& m) {
  std::vector<int64_t> out(static_cast<size_t>(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) out[r] = m.RowNnz(r);
  return out;
}

std::vector<int64_t> RowIndexMax(const CsrMatrix& m) {
  std::vector<int64_t> out(static_cast<size_t>(m.rows()), -1);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const double* vals = m.RowVals(r);
    const int64_t* cols = m.RowCols(r);
    const int64_t nnz = m.RowNnz(r);
    if (nnz == 0) continue;
    int64_t best = 0;
    for (int64_t k = 1; k < nnz; ++k) {
      if (vals[k] > vals[best]) best = k;
    }
    out[r] = cols[best];
  }
  return out;
}

double Sum(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

std::vector<double> MatVec(const CsrMatrix& m, const std::vector<double>& x) {
  SLICELINE_KERNEL_SCOPE("MatVec");
  SLICELINE_CHECK_EQ(m.cols(), static_cast<int64_t>(x.size()));
  std::vector<double> y(static_cast<size_t>(m.rows()), 0.0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const double* vals = m.RowVals(r);
    const int64_t* cols = m.RowCols(r);
    const int64_t nnz = m.RowNnz(r);
    double acc = 0.0;
    for (int64_t k = 0; k < nnz; ++k) acc += vals[k] * x[cols[k]];
    y[r] = acc;
  }
  return y;
}

std::vector<double> TransposeMatVec(const CsrMatrix& m,
                                    const std::vector<double>& x) {
  SLICELINE_KERNEL_SCOPE("TransposeMatVec");
  SLICELINE_CHECK_EQ(m.rows(), static_cast<int64_t>(x.size()));
  std::vector<double> y(static_cast<size_t>(m.cols()), 0.0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* vals = m.RowVals(r);
    const int64_t* cols = m.RowCols(r);
    const int64_t nnz = m.RowNnz(r);
    for (int64_t k = 0; k < nnz; ++k) y[cols[k]] += vals[k] * xr;
  }
  return y;
}

}  // namespace sliceline::linalg
