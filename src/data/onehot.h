#ifndef SLICELINE_DATA_ONEHOT_H_
#define SLICELINE_DATA_ONEHOT_H_

#include <cstdint>
#include <vector>

#include "data/int_matrix.h"
#include "linalg/csr_matrix.h"

namespace sliceline::data {

/// Feature offsets of the one-hot encoding (Algorithm 1 lines 2-4):
/// feature j occupies one-hot columns [fb[j], fe[j]) (0-based, exclusive
/// end), with fe[j] - fb[j] == fdom[j].
struct FeatureOffsets {
  std::vector<int32_t> fdom;  ///< per-feature domain (colMaxs(X0))
  std::vector<int64_t> fb;    ///< begin column per feature
  std::vector<int64_t> fe;    ///< end column (exclusive) per feature
  int64_t total = 0;          ///< l = sum(fdom)

  int num_features() const { return static_cast<int>(fdom.size()); }

  /// Feature owning one-hot column `col` (binary search over fb).
  int FeatureOfColumn(int64_t col) const;

  /// 1-based code represented by one-hot column `col`.
  int32_t CodeOfColumn(int64_t col) const;

  /// One-hot column of (feature, 1-based code).
  int64_t ColumnOf(int feature, int32_t code) const;
};

/// Computes domains and offsets from the integer-encoded matrix.
FeatureOffsets ComputeOffsets(const IntMatrix& x0);

/// One-hot encodes X0 into the n x l 0/1 CSR matrix X. Direct CSR
/// construction; exactly equivalent to the paper's
/// table(rix, X0 + fb) contingency-table formulation (each row has one
/// entry per feature, and fb is increasing, so rows come out sorted).
linalg::CsrMatrix OneHotEncode(const IntMatrix& x0,
                               const FeatureOffsets& offsets);

/// The literal table(rix, cix) formulation from Algorithm 1 lines 1-5, kept
/// as a reference implementation (tests assert it matches OneHotEncode).
linalg::CsrMatrix OneHotEncodeViaTable(const IntMatrix& x0,
                                       const FeatureOffsets& offsets);

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_ONEHOT_H_
