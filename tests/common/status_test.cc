#include "common/status.h"

#include <gtest/gtest.h>

namespace sliceline {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  Status st = Status::InvalidArgument("bad value");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "bad value");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad value");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  SLICELINE_ASSIGN_OR_RETURN(int h, Half(x));
  SLICELINE_RETURN_NOT_OK(Status::OK());
  *out = h;
  return Status::OK();
}

TEST(StatusOrTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = UseMacros(3, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeToStringCoversAll) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace sliceline
