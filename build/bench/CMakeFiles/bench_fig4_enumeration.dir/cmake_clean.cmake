file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_enumeration.dir/bench_fig4_enumeration.cc.o"
  "CMakeFiles/bench_fig4_enumeration.dir/bench_fig4_enumeration.cc.o.d"
  "bench_fig4_enumeration"
  "bench_fig4_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
