#include "data/frame.h"

#include <gtest/gtest.h>

namespace sliceline::data {
namespace {

TEST(ColumnTest, NumericAccessors) {
  Column c("age", std::vector<double>{1.0, 2.0});
  EXPECT_TRUE(c.is_numeric());
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.ValueToString(0), "1");
}

TEST(ColumnTest, CategoricalAccessors) {
  Column c("city", std::vector<std::string>{"a", "b", "c"});
  EXPECT_FALSE(c.is_numeric());
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.ValueToString(2), "c");
}

TEST(FrameTest, AddColumnChecksLength) {
  Frame f;
  EXPECT_TRUE(f.AddColumn(Column("a", std::vector<double>{1, 2})).ok());
  EXPECT_FALSE(f.AddColumn(Column("b", std::vector<double>{1})).ok());
  EXPECT_TRUE(f.AddColumn(Column("b", std::vector<double>{3, 4})).ok());
  EXPECT_EQ(f.num_rows(), 2);
  EXPECT_EQ(f.num_columns(), 2);
}

TEST(FrameTest, RejectsDuplicateNames) {
  Frame f;
  EXPECT_TRUE(f.AddColumn(Column("a", std::vector<double>{1})).ok());
  EXPECT_FALSE(f.AddColumn(Column("a", std::vector<double>{2})).ok());
}

TEST(FrameTest, ColumnIndexLookup) {
  Frame f;
  ASSERT_TRUE(f.AddColumn(Column("x", std::vector<double>{1})).ok());
  ASSERT_TRUE(f.AddColumn(Column("y", std::vector<double>{2})).ok());
  EXPECT_EQ(f.ColumnIndex("y").value(), 1);
  EXPECT_FALSE(f.ColumnIndex("z").ok());
}

TEST(FrameTest, DropColumn) {
  Frame f;
  ASSERT_TRUE(f.AddColumn(Column("x", std::vector<double>{1})).ok());
  ASSERT_TRUE(f.AddColumn(Column("y", std::vector<double>{2})).ok());
  Frame g = f.DropColumn("x").value();
  EXPECT_EQ(g.num_columns(), 1);
  EXPECT_EQ(g.column(0).name(), "y");
  EXPECT_FALSE(f.DropColumn("zz").ok());
}

}  // namespace
}  // namespace sliceline::data
