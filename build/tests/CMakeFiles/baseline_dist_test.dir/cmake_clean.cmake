file(REMOVE_RECURSE
  "CMakeFiles/baseline_dist_test.dir/baseline/error_tree_test.cc.o"
  "CMakeFiles/baseline_dist_test.dir/baseline/error_tree_test.cc.o.d"
  "CMakeFiles/baseline_dist_test.dir/baseline/slicefinder_test.cc.o"
  "CMakeFiles/baseline_dist_test.dir/baseline/slicefinder_test.cc.o.d"
  "CMakeFiles/baseline_dist_test.dir/dist/dist_test.cc.o"
  "CMakeFiles/baseline_dist_test.dir/dist/dist_test.cc.o.d"
  "baseline_dist_test"
  "baseline_dist_test.pdb"
  "baseline_dist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
