#ifndef SLICELINE_LINALG_KERNELS_H_
#define SLICELINE_LINALG_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/csr_matrix.h"

namespace sliceline::linalg {

// ---------------------------------------------------------------------------
// Reductions (SystemDS colSums / colMaxs / rowSums / rowMaxs / rowIndexMax).
// ---------------------------------------------------------------------------

/// Per-column sum of stored entries.
std::vector<double> ColSums(const CsrMatrix& m);

/// Per-column maximum. Implicit zeros participate: a column whose nnz is
/// smaller than rows() has maximum >= 0 (matches SystemDS colMaxs on sparse).
std::vector<double> ColMaxs(const CsrMatrix& m);

/// Per-row sum of stored entries.
std::vector<double> RowSums(const CsrMatrix& m);

/// Per-row maximum, with implicit zeros participating as above.
std::vector<double> RowMaxs(const CsrMatrix& m);

/// Per-row count of stored (non-zero) entries.
std::vector<int64_t> RowNnzCounts(const CsrMatrix& m);

/// 0-based column index of the per-row maximum among stored entries; -1 for
/// an empty row. (SystemDS rowIndexMax is 1-based; callers adjust if they
/// need paper-faithful indices.)
std::vector<int64_t> RowIndexMax(const CsrMatrix& m);

/// Sum of all entries of a vector.
double Sum(const std::vector<double>& v);

// ---------------------------------------------------------------------------
// Matrix-vector products.
// ---------------------------------------------------------------------------

/// y = m * x.
std::vector<double> MatVec(const CsrMatrix& m, const std::vector<double>& x);

/// y = m^T * x, i.e. the row-vector/matrix product (e^T X)^T used for slice
/// error sums (Equation 4 of the paper).
std::vector<double> TransposeMatVec(const CsrMatrix& m,
                                    const std::vector<double>& x);

// ---------------------------------------------------------------------------
// Matrix-matrix products.
// ---------------------------------------------------------------------------

/// Explicit transpose (counting sort on columns; output rows sorted).
CsrMatrix Transpose(const CsrMatrix& m);

/// Gustavson sparse-sparse product C = a * b.
CsrMatrix Multiply(const CsrMatrix& a, const CsrMatrix& b);

/// C = a * b^T via sorted-list intersections per row pair. This is the shape
/// of both key products in SliceLine: X * S^T (slice evaluation) and S * S^T
/// (pair joining). For binary inputs each output entry is the intersection
/// size of two sparse rows.
CsrMatrix MultiplyABt(const CsrMatrix& a, const CsrMatrix& b);

// ---------------------------------------------------------------------------
// Element-wise / structural ops.
// ---------------------------------------------------------------------------

/// Keeps entries with value == target, replacing them by 1.0 (the "(... == L)"
/// comparison of Equations 6 and 10; implicit zeros compare unequal for any
/// non-zero target).
CsrMatrix FilterEquals(const CsrMatrix& m, double target);

/// diag(scale) * m, i.e. row i multiplied by scale[i]. Entries scaled to zero
/// are dropped.
CsrMatrix ScaleRows(const CsrMatrix& m, const std::vector<double>& scale);

/// Element-wise sum of two equally shaped matrices (entries cancelling to
/// exactly zero are dropped).
CsrMatrix Add(const CsrMatrix& a, const CsrMatrix& b);

/// Replaces every stored non-zero entry by 1.0 (the "!= 0" binarization used
/// when merging slice pairs, P = ((P1 S) + (P2 S)) != 0).
CsrMatrix Binarize(const CsrMatrix& m);

/// Strict upper-triangle entries of m with value == target, as (row, col)
/// pairs (the upper.tri(..., values=TRUE) extraction of Equation 6).
std::vector<std::pair<int64_t, int64_t>> UpperTriEquals(const CsrMatrix& m,
                                                        double target);

// ---------------------------------------------------------------------------
// Selection / reshaping (removeEmpty, indexing, rbind).
// ---------------------------------------------------------------------------

/// Drops all-zero rows; returns the compacted matrix plus the original row
/// indices of the kept rows (SystemDS removeEmpty(margin="rows")).
std::pair<CsrMatrix, std::vector<int64_t>> RemoveEmptyRows(const CsrMatrix& m);

/// Keeps only rows with keep[r] != 0, preserving order.
CsrMatrix SelectRows(const CsrMatrix& m, const std::vector<uint8_t>& keep);

/// Gathers the given rows in order (duplicates allowed).
CsrMatrix GatherRows(const CsrMatrix& m, const std::vector<int64_t>& rows);

/// Keeps only the given columns (sorted unique input), re-indexing them to
/// 0..k-1 (X <- X[, cI] in Algorithm 1 line 12).
CsrMatrix SelectColumns(const CsrMatrix& m, const std::vector<int64_t>& cols);

/// Vertical concatenation; column counts must match.
CsrMatrix Rbind(const CsrMatrix& top, const CsrMatrix& bottom);

/// Contiguous row range [begin, end).
CsrMatrix SliceRowRange(const CsrMatrix& m, int64_t begin, int64_t end);

// ---------------------------------------------------------------------------
// Construction (table, seq, cumsum, cumprod) and ordering.
// ---------------------------------------------------------------------------

/// Contingency table: adds weight[k] (default 1) at (rix[k], cix[k]).
/// Duplicate positions sum, mirroring SystemDS table().
CsrMatrix Table(const std::vector<int64_t>& rix,
                const std::vector<int64_t>& cix, int64_t rows, int64_t cols);
CsrMatrix Table(const std::vector<int64_t>& rix,
                const std::vector<int64_t>& cix,
                const std::vector<double>& weights, int64_t rows,
                int64_t cols);

/// Inclusive prefix sums / products.
std::vector<double> CumSum(const std::vector<double>& v);
std::vector<double> CumProd(const std::vector<double>& v);

/// Indices that sort v descending (stable, so ties keep input order); the
/// order(..., decreasing=TRUE, index.return=TRUE) primitive used by top-K
/// maintenance.
std::vector<int64_t> OrderDesc(const std::vector<double>& v);

}  // namespace sliceline::linalg

#endif  // SLICELINE_LINALG_KERNELS_H_
