#include "core/slice_analysis.h"

#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace sliceline::core {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

double SliceJaccard(const Slice& a, const Slice& b,
                    const data::IntMatrix& x0) {
  int64_t in_a = 0;
  int64_t in_b = 0;
  int64_t in_both = 0;
  for (int64_t i = 0; i < x0.rows(); ++i) {
    const bool ma = a.Matches(x0, i);
    const bool mb = b.Matches(x0, i);
    in_a += ma;
    in_b += mb;
    in_both += ma && mb;
  }
  const int64_t in_union = in_a + in_b - in_both;
  return in_union == 0 ? 0.0
                       : static_cast<double>(in_both) /
                             static_cast<double>(in_union);
}

SliceAnalysis AnalyzeSlices(const std::vector<Slice>& slices,
                            const data::IntMatrix& x0,
                            const std::vector<double>& errors) {
  SLICELINE_CHECK_EQ(static_cast<int64_t>(errors.size()), x0.rows());
  SliceAnalysis analysis;
  const size_t k = slices.size();
  if (k == 0) return analysis;

  // One pass over rows computing membership per slice.
  std::vector<std::vector<uint8_t>> member(
      k, std::vector<uint8_t>(static_cast<size_t>(x0.rows()), 0));
  double total_error = 0.0;
  double covered_error = 0.0;
  analysis.error_shares.assign(k, 0.0);
  for (int64_t i = 0; i < x0.rows(); ++i) {
    total_error += errors[i];
    bool any = false;
    for (size_t s = 0; s < k; ++s) {
      if (slices[s].Matches(x0, i)) {
        member[s][i] = 1;
        analysis.error_shares[s] += errors[i];
        any = true;
      }
    }
    if (any) {
      ++analysis.covered_rows;
      covered_error += errors[i];
    }
  }
  if (total_error > 0.0) {
    analysis.covered_error_share = covered_error / total_error;
    for (double& share : analysis.error_shares) share /= total_error;
  }

  // Pairwise Jaccard from the membership bitmaps.
  analysis.pairwise_jaccard.reserve(k * (k - 1) / 2);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      int64_t inter = 0;
      int64_t uni = 0;
      for (int64_t i = 0; i < x0.rows(); ++i) {
        const bool ma = member[a][i] != 0;
        const bool mb = member[b][i] != 0;
        inter += ma && mb;
        uni += ma || mb;
      }
      analysis.pairwise_jaccard.push_back(
          uni == 0 ? 0.0
                   : static_cast<double>(inter) / static_cast<double>(uni));
    }
  }
  return analysis;
}

std::string ResultToJson(const SliceLineResult& result,
                         const std::vector<std::string>& feature_names) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"min_support\": " << result.min_support << ",\n";
  os << "  \"average_error\": " << result.average_error << ",\n";
  os << "  \"total_seconds\": " << result.total_seconds << ",\n";
  os << "  \"total_evaluated\": " << result.total_evaluated << ",\n";
  os << "  \"slices\": [\n";
  for (size_t i = 0; i < result.top_k.size(); ++i) {
    const Slice& slice = result.top_k[i];
    os << "    {\"predicates\": [";
    for (size_t p = 0; p < slice.predicates.size(); ++p) {
      const auto& [feature, code] = slice.predicates[p];
      std::string name = feature >= 0 &&
                                 feature < static_cast<int>(
                                               feature_names.size())
                             ? feature_names[feature]
                             : "F" + std::to_string(feature);
      os << (p > 0 ? ", " : "") << "{\"feature\": \"" << JsonEscape(name)
         << "\", \"index\": " << feature << ", \"value\": " << code << "}";
    }
    os << "], \"score\": " << slice.stats.score
       << ", \"size\": " << slice.stats.size
       << ", \"error_sum\": " << slice.stats.error_sum
       << ", \"max_error\": " << slice.stats.max_error << "}"
       << (i + 1 < result.top_k.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"levels\": [\n";
  for (size_t i = 0; i < result.levels.size(); ++i) {
    const LevelStats& level = result.levels[i];
    os << "    {\"level\": " << level.level
       << ", \"candidates\": " << level.candidates
       << ", \"valid\": " << level.valid << ", \"pruned\": " << level.pruned
       << ", \"seconds\": " << level.seconds << "}"
       << (i + 1 < result.levels.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace sliceline::core
