#ifndef SLICELINE_COMMON_STATUS_H_
#define SLICELINE_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace sliceline {

/// Error categories used across the library. The public API does not throw
/// exceptions; fallible operations return Status or StatusOr<T>
/// (Arrow/RocksDB idiom).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kIoError = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kCancelled = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result carrying a code and a message. Cheap to copy in
/// the success case (no allocation), explicit in every signature that can
/// fail.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status (failure).
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Aborts with a diagnostic; out-of-line to keep StatusOr light.
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok()) internal::DieOnBadStatusAccess(status_);
}

/// True for the governance stop codes (cancelled / deadline-exceeded /
/// resource-exhausted). Engines treat these as graceful-stop signals --
/// package best-so-far results -- rather than propagating them as errors.
inline bool IsGovernanceStatus(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kResourceExhausted;
}

/// Propagates a non-OK Status from the current function.
#define SLICELINE_RETURN_NOT_OK(expr)              \
  do {                                             \
    ::sliceline::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Evaluates a StatusOr expression, propagating the error or binding the
/// value to `lhs`.
#define SLICELINE_ASSIGN_OR_RETURN(lhs, expr)      \
  SLICELINE_ASSIGN_OR_RETURN_IMPL(                 \
      SLICELINE_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define SLICELINE_CONCAT_INNER_(a, b) a##b
#define SLICELINE_CONCAT_(a, b) SLICELINE_CONCAT_INNER_(a, b)
#define SLICELINE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value();

}  // namespace sliceline

#endif  // SLICELINE_COMMON_STATUS_H_
