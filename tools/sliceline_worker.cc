// One slice-evaluation worker of the distributed execution mode. Listens on
// a Unix-domain socket or a loopback TCP port for worker-protocol requests
// (see src/serve/worker_protocol.h): a coordinator enlists, ships a row
// shard of the one-hot matrix once, and then broadcasts candidate blocks to
// evaluate. Shards are kept per dataset fingerprint, so a coordinator that
// reconnects (or a second run over the same dataset) skips the transfer.
//
// Usage:
//   sliceline_worker [--socket PATH | --port N] [--log-level LEVEL]
//                    [--drop-every N]
//
// --port 0 binds a kernel-assigned port. Once listening, one READY line is
// printed to stdout ("READY port=N" / "READY socket=PATH") so the
// coordinator's launcher can wait for startup and discover the bound port.
// --drop-every N is a chaos knob for the fault-tolerance test suite: every
// Nth request is answered by abruptly closing the connection.
#include <csignal>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "dist/worker.h"

namespace {

std::atomic<sliceline::dist::Worker*> g_worker{nullptr};

// Only an atomic load/store happens here; the serving thread notices the
// flag at its next accept/read poll.
void HandleSignal(int) {
  sliceline::dist::Worker* worker = g_worker.load(std::memory_order_acquire);
  if (worker != nullptr) worker->RequestShutdown();
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: sliceline_worker [--socket PATH | --port N] [options]\n"
      "  --socket PATH      listen on a Unix-domain socket\n"
      "  --port N           listen on 127.0.0.1:N (0 = kernel-assigned)\n"
      "  --log-level LEVEL  debug|info|warn|error (default info)\n"
      "  --drop-every N     chaos: close the connection on every Nth\n"
      "                     request instead of serving it (0 = off)\n"
      "Every flag also accepts --flag=value.\n");
}

struct WorkerCliOptions {
  sliceline::dist::WorkerOptions worker;
  std::string log_level = "info";
  bool have_endpoint = false;
};

bool ParseArgs(int argc, char** argv, WorkerCliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](const char* name) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      const char* v = next("--socket");
      if (v == nullptr) return false;
      options->worker.unix_socket = v;
      options->have_endpoint = true;
    } else if (arg == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      options->worker.tcp_port = std::atoi(v);
      options->have_endpoint = true;
    } else if (arg == "--drop-every") {
      const char* v = next("--drop-every");
      if (v == nullptr) return false;
      options->worker.drop_every = std::atoll(v);
    } else if (arg == "--log-level") {
      const char* v = next("--log-level");
      if (v == nullptr) return false;
      options->log_level = v;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  WorkerCliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 1;
  }
  if (options.log_level == "debug") {
    sliceline::SetLogLevel(sliceline::LogLevel::kDebug);
  } else if (options.log_level == "warn") {
    sliceline::SetLogLevel(sliceline::LogLevel::kWarning);
  } else if (options.log_level == "error") {
    sliceline::SetLogLevel(sliceline::LogLevel::kError);
  } else {
    sliceline::SetLogLevel(sliceline::LogLevel::kInfo);
  }
  if (!options.have_endpoint) {
    std::fprintf(stderr, "need --socket or --port\n");
    PrintUsage();
    return 1;
  }
  if (options.worker.drop_every < 0) {
    std::fprintf(stderr, "--drop-every must be >= 0\n");
    return 1;
  }

  sliceline::dist::Worker worker(options.worker);
  const sliceline::Status started = worker.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "startup failed: %s\n", started.message().c_str());
    return 1;
  }
  g_worker.store(&worker, std::memory_order_release);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  if (!options.worker.unix_socket.empty()) {
    std::printf("READY socket=%s\n", options.worker.unix_socket.c_str());
  } else {
    std::printf("READY port=%d\n", worker.tcp_port());
  }
  std::fflush(stdout);

  worker.Wait();
  g_worker.store(nullptr, std::memory_order_release);
  return 0;
}
