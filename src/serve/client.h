#ifndef SLICELINE_SERVE_CLIENT_H_
#define SLICELINE_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "core/slice.h"
#include "obs/json_parse.h"
#include "serve/protocol.h"

namespace sliceline::serve {

/// Where a server is listening: exactly one of the two fields set.
struct Endpoint {
  std::string unix_socket;
  int tcp_port = -1;

  static Endpoint Unix(std::string path) {
    Endpoint e;
    e.unix_socket = std::move(path);
    return e;
  }
  static Endpoint Tcp(int port) {
    Endpoint e;
    e.tcp_port = port;
    return e;
  }
};

/// A find_slices (or done get_status) response unpacked into the same types
/// the in-process engines return, so callers can feed it straight into
/// core::FormatResult. Doubles round-trip exactly through the %.17g wire
/// encoding, which makes the formatted output bit-identical to a local run.
struct FindSlicesReply {
  int64_t job_id = -1;  ///< -1 on a cache hit (no job ran)
  bool cache_hit = false;
  core::SliceLineResult result;
  std::vector<std::string> feature_names;
};

/// Synchronous protocol client: one connection, one in-flight request.
/// Every method sends one request line and blocks for the response line;
/// server-side errors come back as the Status carried in the structured
/// error object (see StatusFromError).
class Client {
 public:
  static StatusOr<Client> Connect(const Endpoint& endpoint);

  /// Sends `request` (the id is auto-assigned when empty) and returns the
  /// parsed response object after checking "ok" and unwrapping errors.
  StatusOr<obs::JsonValue> Call(Request request);

  StatusOr<obs::JsonValue> RegisterDataset(const RegisterDatasetRequest& r);
  StatusOr<FindSlicesReply> FindSlices(const FindSlicesRequest& r);
  StatusOr<obs::JsonValue> GetStatus(int64_t job_id);
  StatusOr<obs::JsonValue> Cancel(int64_t job_id);
  StatusOr<obs::JsonValue> ListDatasets();
  StatusOr<obs::JsonValue> ServerStats();

  /// Raw response line of the last Call (tooling that wants to print the
  /// server's JSON verbatim instead of re-serializing the parse tree).
  const std::string& last_response_line() const { return last_response_line_; }

 private:
  explicit Client(SocketConnection connection)
      : connection_(std::move(connection)) {}

  SocketConnection connection_;
  int64_t next_id_ = 1;
  std::string last_response_line_;
};

/// Unpacks a response object holding "result" (+ "job"/"cache_hit") into a
/// FindSlicesReply; shared by Client::FindSlices and get_status pollers.
StatusOr<FindSlicesReply> UnpackFindSlicesReply(const obs::JsonValue& response);

/// Fetches the /metrics payload over a fresh connection using a minimal
/// HTTP/1.0 GET, strips the headers, and returns the Prometheus text body.
StatusOr<std::string> FetchMetrics(const Endpoint& endpoint);

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_CLIENT_H_
