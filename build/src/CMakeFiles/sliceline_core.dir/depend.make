# Empty dependencies file for sliceline_core.
# This may be replaced when dependencies are built.
