file(REMOVE_RECURSE
  "CMakeFiles/bench_systems_compare.dir/bench_systems_compare.cc.o"
  "CMakeFiles/bench_systems_compare.dir/bench_systems_compare.cc.o.d"
  "bench_systems_compare"
  "bench_systems_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_systems_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
