#include "core/slice_analysis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sliceline.h"

namespace sliceline::core {
namespace {

data::IntMatrix SmallX0() {
  // Two binary features over 8 rows.
  data::IntMatrix x0(8, 2);
  const int32_t rows[8][2] = {{1, 1}, {1, 1}, {1, 2}, {1, 2},
                              {2, 1}, {2, 1}, {2, 2}, {2, 2}};
  for (int i = 0; i < 8; ++i) {
    x0.At(i, 0) = rows[i][0];
    x0.At(i, 1) = rows[i][1];
  }
  return x0;
}

Slice MakeSlice(std::vector<std::pair<int, int32_t>> preds, double score) {
  Slice s;
  s.predicates = std::move(preds);
  s.stats.score = score;
  return s;
}

TEST(SliceJaccardTest, DisjointAndNested) {
  data::IntMatrix x0 = SmallX0();
  const Slice f0_1 = MakeSlice({{0, 1}}, 1);  // rows 0-3
  const Slice f0_2 = MakeSlice({{0, 2}}, 1);  // rows 4-7
  const Slice both = MakeSlice({{0, 1}, {1, 1}}, 1);  // rows 0-1
  EXPECT_DOUBLE_EQ(SliceJaccard(f0_1, f0_2, x0), 0.0);
  EXPECT_DOUBLE_EQ(SliceJaccard(f0_1, f0_1, x0), 1.0);
  EXPECT_DOUBLE_EQ(SliceJaccard(f0_1, both, x0), 0.5);  // 2 / 4
}

TEST(SliceJaccardTest, Overlapping) {
  data::IntMatrix x0 = SmallX0();
  const Slice f0_1 = MakeSlice({{0, 1}}, 1);  // rows 0-3
  const Slice f1_1 = MakeSlice({{1, 1}}, 1);  // rows 0,1,4,5
  // Intersection rows {0,1}; union {0,1,2,3,4,5}.
  EXPECT_DOUBLE_EQ(SliceJaccard(f0_1, f1_1, x0), 2.0 / 6.0);
}

TEST(AnalyzeSlicesTest, CoverageAndErrorShares) {
  data::IntMatrix x0 = SmallX0();
  std::vector<double> errors = {1, 1, 0, 0, 1, 1, 0, 0};  // total 4
  std::vector<Slice> slices = {
      MakeSlice({{0, 1}}, 1),  // rows 0-3, error 2
      MakeSlice({{1, 1}}, 1),  // rows 0,1,4,5, error 4
  };
  SliceAnalysis analysis = AnalyzeSlices(slices, x0, errors);
  EXPECT_EQ(analysis.covered_rows, 6);  // union rows 0-5
  EXPECT_DOUBLE_EQ(analysis.covered_error_share, 1.0);  // all error covered
  ASSERT_EQ(analysis.error_shares.size(), 2u);
  EXPECT_DOUBLE_EQ(analysis.error_shares[0], 0.5);
  EXPECT_DOUBLE_EQ(analysis.error_shares[1], 1.0);
  ASSERT_EQ(analysis.pairwise_jaccard.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.pairwise_jaccard[0], 2.0 / 6.0);
}

TEST(AnalyzeSlicesTest, EmptyInput) {
  data::IntMatrix x0 = SmallX0();
  std::vector<double> errors(8, 0.5);
  SliceAnalysis analysis = AnalyzeSlices({}, x0, errors);
  EXPECT_EQ(analysis.covered_rows, 0);
  EXPECT_TRUE(analysis.pairwise_jaccard.empty());
}

TEST(ResultToJsonTest, WellFormedOutput) {
  Rng rng(5);
  data::IntMatrix x0(300, 3);
  std::vector<double> errors(300);
  for (int64_t i = 0; i < 300; ++i) {
    for (int j = 0; j < 3; ++j) {
      x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(3)) + 1;
    }
    errors[i] = rng.NextBool(0.3) ? 1.0 : 0.0;
  }
  SliceLineConfig config;
  config.k = 3;
  config.min_support = 10;
  auto result = RunSliceLine(x0, errors, config);
  ASSERT_TRUE(result.ok());
  const std::string json = ResultToJson(*result, {"alpha", "beta", "gamma"});
  EXPECT_NE(json.find("\"slices\""), std::string::npos);
  EXPECT_NE(json.find("\"levels\""), std::string::npos);
  EXPECT_NE(json.find("\"min_support\": 10"), std::string::npos);
  if (!result->top_k.empty()) {
    EXPECT_NE(json.find("\"feature\": \""), std::string::npos);
  }
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ResultToJsonTest, EscapesFeatureNames) {
  SliceLineResult result;
  Slice s;
  s.predicates = {{0, 1}};
  s.stats = {1.0, 1.0, 1.0, 10};
  result.top_k.push_back(s);
  const std::string json = ResultToJson(result, {"weird\"name"});
  EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace sliceline::core
