// Differential kernel-test rig: every SIMD kernel, at every ISA level this
// host can execute, over seeded typical and pathological bitmap shapes, must
// be BIT-identical to the always-compiled scalar reference — integer counts
// equal, output words memcmp-equal, and masked float reductions equal down
// to the last ulp (the vector units only accelerate AND/popcount and
// zero-word skipping; accumulation order is ascending rows at every level).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "linalg/bitmap.h"
#include "linalg/kernels_simd.h"

namespace sliceline::linalg {
namespace {

// Bit-exact double comparison: NaN-safe and distinguishes -0.0 from +0.0,
// which EXPECT_DOUBLE_EQ does not.
void ExpectBitEqual(double expected, double actual, const std::string& what) {
  uint64_t eb = 0;
  uint64_t ab = 0;
  std::memcpy(&eb, &expected, sizeof(eb));
  std::memcpy(&ab, &actual, sizeof(ab));
  EXPECT_EQ(eb, ab) << what << ": expected " << expected << " got " << actual;
}

// One seeded input shape: a row count plus per-column fill probabilities.
// Shapes deliberately include every packing pathology: a single row, tails
// not filling a word (63/65/97), exact word multiples, all-zero columns,
// full columns, and a row space wide enough to need many words.
struct Shape {
  const char* name;
  int64_t rows;
  std::vector<double> densities;  // one bitmap per entry; <0 = all rows set
};

std::vector<Shape> TestShapes() {
  return {
      {"single_row", 1, {0.0, 1.0, -1.0}},
      {"tail_63", 63, {0.5, 0.0, -1.0, 0.9}},
      {"word_64", 64, {0.5, 0.1, -1.0}},
      {"tail_65", 65, {0.5, 0.0, 1.0, -1.0}},
      {"tail_97", 97, {0.3, 0.7, 0.0}},
      {"two_words_128", 128, {0.5, 0.05}},
      {"wide_sparse", 5000, {0.01, 0.02, 0.5, 0.0, -1.0}},
      {"wide_dense", 4099, {0.9, 0.8, 0.95}},
  };
}

// Builds the shape's bitmaps deterministically from a fixed seed.
std::vector<Bitmap> BuildBitmaps(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  std::vector<Bitmap> out;
  for (double density : shape.densities) {
    Bitmap b(shape.rows);
    for (int64_t r = 0; r < shape.rows; ++r) {
      if (density < 0 || rng.NextBool(density)) b.Set(r);
    }
    out.push_back(std::move(b));
  }
  return out;
}

// Error vector covering the padded word range (masked_stats contract: errors
// cover [0, words*64), read only where bits are set). Values include exact
// and non-representable-sum doubles so accumulation-order bugs surface.
std::vector<double> BuildErrors(int64_t words, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> errors(static_cast<size_t>(words) * 64);
  for (double& e : errors) e = rng.NextDouble() * 3.0;
  return errors;
}

class SimdDifferentialTest : public ::testing::TestWithParam<SimdIsa> {
 protected:
  static bool IsAvailable(SimdIsa isa) {
    for (SimdIsa available : AvailableIsas()) {
      if (available == isa) return true;
    }
    return false;
  }

  void SetUp() override {
    if (!IsAvailable(GetParam())) {
      GTEST_SKIP() << "ISA " << IsaName(GetParam())
                   << " not executable on this host";
    }
  }
};

TEST_P(SimdDifferentialTest, KernelTableReportsItsIsa) {
  EXPECT_EQ(KernelsFor(GetParam()).isa, GetParam());
}

TEST_P(SimdDifferentialTest, PopcountMatchesScalar) {
  const SimdKernels& simd = KernelsFor(GetParam());
  const SimdKernels& scalar = KernelsFor(SimdIsa::kScalar);
  uint64_t seed = 11;
  for (const Shape& shape : TestShapes()) {
    for (const Bitmap& b : BuildBitmaps(shape, seed++)) {
      EXPECT_EQ(simd.popcount(b.data(), b.words()),
                scalar.popcount(b.data(), b.words()))
          << shape.name;
      // Unpadded word counts exercise the kernels' tail loops (the evaluator
      // always passes padded buffers, tests and fuzzers may not).
      for (int64_t words : {int64_t{1}, b.words() - 1, b.words()}) {
        if (words < 1) continue;
        EXPECT_EQ(simd.popcount(b.data(), words),
                  scalar.popcount(b.data(), words))
            << shape.name << " words=" << words;
      }
    }
  }
}

TEST_P(SimdDifferentialTest, AndInplaceMatchesScalar) {
  const SimdKernels& simd = KernelsFor(GetParam());
  const SimdKernels& scalar = KernelsFor(SimdIsa::kScalar);
  uint64_t seed = 23;
  for (const Shape& shape : TestShapes()) {
    std::vector<Bitmap> bitmaps = BuildBitmaps(shape, seed++);
    for (size_t i = 0; i + 1 < bitmaps.size(); ++i) {
      const Bitmap& a = bitmaps[i];
      const Bitmap& b = bitmaps[i + 1];
      std::vector<uint64_t> got(a.data(), a.data() + a.words());
      std::vector<uint64_t> want = got;
      simd.and_inplace(got.data(), b.data(), a.words());
      scalar.and_inplace(want.data(), b.data(), a.words());
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            got.size() * sizeof(uint64_t)),
                0)
          << shape.name << " pair " << i;
    }
  }
}

TEST_P(SimdDifferentialTest, AndPopcountMatchesScalar) {
  const SimdKernels& simd = KernelsFor(GetParam());
  const SimdKernels& scalar = KernelsFor(SimdIsa::kScalar);
  uint64_t seed = 37;
  for (const Shape& shape : TestShapes()) {
    std::vector<Bitmap> bitmaps = BuildBitmaps(shape, seed++);
    for (size_t i = 0; i + 1 < bitmaps.size(); ++i) {
      const Bitmap& a = bitmaps[i];
      const Bitmap& b = bitmaps[i + 1];
      EXPECT_EQ(simd.and_popcount(a.data(), b.data(), a.words()),
                scalar.and_popcount(a.data(), b.data(), a.words()))
          << shape.name << " pair " << i;
    }
  }
}

TEST_P(SimdDifferentialTest, IntersectColumnsMatchesScalar) {
  const SimdKernels& simd = KernelsFor(GetParam());
  const SimdKernels& scalar = KernelsFor(SimdIsa::kScalar);
  uint64_t seed = 53;
  for (const Shape& shape : TestShapes()) {
    std::vector<Bitmap> bitmaps = BuildBitmaps(shape, seed++);
    const int64_t words = bitmaps.front().words();
    std::vector<const uint64_t*> cols;
    for (const Bitmap& b : bitmaps) cols.push_back(b.data());
    // Every prefix length, including len == 1 (copy) and the widest
    // available intersection.
    for (int32_t len = 1; len <= static_cast<int32_t>(cols.size()); ++len) {
      std::vector<uint64_t> got(static_cast<size_t>(words), ~uint64_t{0});
      std::vector<uint64_t> want(static_cast<size_t>(words), 0);
      const int64_t got_count =
          simd.intersect_columns(cols.data(), len, got.data(), words);
      const int64_t want_count =
          scalar.intersect_columns(cols.data(), len, want.data(), words);
      EXPECT_EQ(got_count, want_count) << shape.name << " len=" << len;
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            got.size() * sizeof(uint64_t)),
                0)
          << shape.name << " len=" << len;
    }
  }
}

TEST_P(SimdDifferentialTest, MaskedStatsMatchesScalarBitExact) {
  const SimdKernels& simd = KernelsFor(GetParam());
  const SimdKernels& scalar = KernelsFor(SimdIsa::kScalar);
  uint64_t seed = 71;
  for (const Shape& shape : TestShapes()) {
    std::vector<Bitmap> bitmaps = BuildBitmaps(shape, seed++);
    const int64_t words = bitmaps.front().words();
    const std::vector<double> errors = BuildErrors(words, seed * 31);
    for (size_t i = 0; i < bitmaps.size(); ++i) {
      MaskedStats got;
      simd.masked_stats(bitmaps[i].data(), words, errors.data(), &got);
      MaskedStats want;
      scalar.masked_stats(bitmaps[i].data(), words, errors.data(), &want);
      const std::string what =
          std::string(shape.name) + " column " + std::to_string(i);
      EXPECT_EQ(got.count, want.count) << what;
      ExpectBitEqual(want.sum, got.sum, what + " sum");
      ExpectBitEqual(want.max, got.max, what + " max");
    }
  }
}

TEST_P(SimdDifferentialTest, MaskedStatsEmptyMaskIsZero) {
  const SimdKernels& simd = KernelsFor(GetParam());
  const int64_t words = BitmapWords(256);
  const std::vector<uint64_t> mask(static_cast<size_t>(words), 0);
  const std::vector<double> errors = BuildErrors(words, 5);
  MaskedStats stats;
  simd.masked_stats(mask.data(), words, errors.data(), &stats);
  EXPECT_EQ(stats.count, 0);
  ExpectBitEqual(0.0, stats.sum, "empty sum");
  ExpectBitEqual(0.0, stats.max, "empty max");
}

// Unblocked, unvectorized reference for the cache-blocked candidate loop:
// intersect each candidate's columns over the full row range, then reduce.
void EvaluateCandidatesReference(const CandidateColumns* candidates,
                                 int64_t count, int64_t words,
                                 const double* errors, double* sizes,
                                 double* error_sums, double* max_errors) {
  const SimdKernels& scalar = KernelsFor(SimdIsa::kScalar);
  std::vector<uint64_t> scratch(static_cast<size_t>(words));
  for (int64_t c = 0; c < count; ++c) {
    scalar.intersect_columns(candidates[c].cols, candidates[c].len,
                             scratch.data(), words);
    MaskedStats stats;
    scalar.masked_stats(scratch.data(), words, errors, &stats);
    sizes[c] += static_cast<double>(stats.count);
    error_sums[c] += stats.sum;
    if (stats.max > max_errors[c]) max_errors[c] = stats.max;
  }
}

TEST_P(SimdDifferentialTest, BlockedCandidateLoopMatchesUnblockedScalar) {
  const SimdKernels& simd = KernelsFor(GetParam());
  Rng rng(1729);
  // A row space large enough that the word tiling actually splits it
  // (> kWordTile words), with enough candidates to cross candidate tiles.
  const int64_t rows = 200000;  // 3125 words > one 2048-word tile
  const int64_t words = BitmapWords(rows);
  const int num_columns = 24;
  std::vector<Bitmap> bitmaps;
  for (int c = 0; c < num_columns; ++c) {
    Bitmap b(rows);
    // Mixed densities, plus one all-zero and one full column.
    const double density = (c == 0) ? 0.0 : (c == 1) ? 1.1 : 0.02 * c;
    for (int64_t r = 0; r < rows; ++r) {
      if (rng.NextBool(density)) b.Set(r);
    }
    bitmaps.push_back(std::move(b));
  }
  const std::vector<double> errors = BuildErrors(words, 99);

  // 100 candidates of widths 1..4 over random columns (> kCandidateTile=64,
  // so the candidate tiling splits too).
  const int64_t count = 100;
  std::vector<std::vector<const uint64_t*>> column_sets;
  column_sets.reserve(static_cast<size_t>(count));
  std::vector<CandidateColumns> candidates;
  for (int64_t i = 0; i < count; ++i) {
    std::vector<const uint64_t*> cols;
    const int len = static_cast<int>(rng.NextInt(1, 4));
    for (int j = 0; j < len; ++j) {
      cols.push_back(
          bitmaps[static_cast<size_t>(rng.NextInt(0, num_columns - 1))]
              .data());
    }
    column_sets.push_back(std::move(cols));
    candidates.push_back(
        {column_sets.back().data(),
         static_cast<int32_t>(column_sets.back().size())});
  }

  std::vector<double> got_sizes(count, 0), got_sums(count, 0),
      got_max(count, 0);
  EvaluateCandidatesBlocked(simd, candidates.data(), count, words,
                            errors.data(), got_sizes.data(), got_sums.data(),
                            got_max.data());

  std::vector<double> want_sizes(count, 0), want_sums(count, 0),
      want_max(count, 0);
  EvaluateCandidatesReference(candidates.data(), count, words, errors.data(),
                              want_sizes.data(), want_sums.data(),
                              want_max.data());

  for (int64_t i = 0; i < count; ++i) {
    const std::string what = "candidate " + std::to_string(i);
    ExpectBitEqual(want_sizes[static_cast<size_t>(i)],
                   got_sizes[static_cast<size_t>(i)], what + " size");
    ExpectBitEqual(want_sums[static_cast<size_t>(i)],
                   got_sums[static_cast<size_t>(i)], what + " error_sum");
    ExpectBitEqual(want_max[static_cast<size_t>(i)],
                   got_max[static_cast<size_t>(i)], what + " max_error");
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, SimdDifferentialTest,
                         ::testing::Values(SimdIsa::kScalar, SimdIsa::kNeon,
                                           SimdIsa::kAvx2, SimdIsa::kAvx512),
                         [](const ::testing::TestParamInfo<SimdIsa>& info) {
                           return std::string(IsaName(info.param));
                         });

TEST(SimdDispatchTest, AvailableStartsWithScalar) {
  const std::vector<SimdIsa>& isas = AvailableIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), SimdIsa::kScalar);
}

TEST(SimdDispatchTest, ForceIsaOverridesSelection) {
  for (SimdIsa isa : AvailableIsas()) {
    ForceIsa(isa);
    EXPECT_EQ(SelectedIsa(), isa);
    EXPECT_EQ(ActiveKernels().isa, isa);
    EXPECT_STREQ(SelectedIsaName(), IsaName(isa));
  }
  ClearForcedIsa();
}

TEST(SimdDispatchTest, IsaNamesRoundTrip) {
  for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kNeon, SimdIsa::kAvx2,
                      SimdIsa::kAvx512}) {
    SimdIsa parsed;
    ASSERT_TRUE(ParseIsaName(IsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  SimdIsa parsed;
  EXPECT_FALSE(ParseIsaName("sse9", &parsed));
  EXPECT_FALSE(ParseIsaName("", &parsed));
}

}  // namespace
}  // namespace sliceline::linalg
