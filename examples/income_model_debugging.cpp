// Model debugging on an Adult-like census income dataset: train a real
// multinomial logistic regression, materialize its per-row inaccuracy, and
// find the top-K slices where the classifier is worst -- the paper's
// motivating workflow ("gender=female AND degree=PhD"-style subgroups).
#include <cstdio>

#include "core/report.h"
#include "core/slice_analysis.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"
#include "ml/pipeline.h"

int main() {
  using namespace sliceline;

  data::DatasetOptions options;
  options.rows = 20000;
  data::EncodedDataset ds = data::MakeAdult(options);
  std::printf("dataset: %s, n=%lld rows, m=%lld features, l=%lld one-hot\n",
              ds.name.c_str(), static_cast<long long>(ds.n()),
              static_cast<long long>(ds.m()),
              static_cast<long long>(ds.OneHotWidth()));

  // Train the classifier and replace the generator's simulated errors with
  // genuine model inaccuracy (0/1 per row).
  auto mean_error = ml::TrainAndMaterializeErrors(&ds);
  if (!mean_error.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 mean_error.status().ToString().c_str());
    return 1;
  }
  std::printf("trained mlogit; training inaccuracy = %.4f\n\n", *mean_error);

  core::SliceLineConfig config;
  config.k = 6;
  config.alpha = 0.95;
  config.max_level = 3;
  auto result = core::RunSliceLine(ds, config);
  if (!result.ok()) {
    std::fprintf(stderr, "SliceLine failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", core::FormatResult(*result, ds.feature_names).c_str());

  // Post-hoc overlap/coverage analysis: slice finding intentionally allows
  // overlapping slices, so quantify how much they share.
  const core::SliceAnalysis analysis =
      core::AnalyzeSlices(result->top_k, ds.x0, ds.errors);
  std::printf("coverage: %lld rows in the union of all slices; %.1f%% of the\n"
              "total model error falls inside them\n",
              static_cast<long long>(analysis.covered_rows),
              100.0 * analysis.covered_error_share);
  size_t pair = 0;
  for (size_t a = 0; a < result->top_k.size(); ++a) {
    for (size_t b = a + 1; b < result->top_k.size(); ++b, ++pair) {
      if (analysis.pairwise_jaccard[pair] > 0.25) {
        std::printf("  slices #%zu and #%zu overlap strongly "
                    "(Jaccard %.2f)\n",
                    a + 1, b + 1, analysis.pairwise_jaccard[pair]);
      }
    }
  }

  std::printf(
      "\nEach slice is a subgroup on which the classifier errs markedly\n"
      "more often than on the dataset overall -- candidates for extra\n"
      "training data, new rules, or fairness review. Machine-readable\n"
      "output: core::ResultToJson(*result).\n");
  return 0;
}
