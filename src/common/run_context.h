#ifndef SLICELINE_COMMON_RUN_CONTEXT_H_
#define SLICELINE_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace sliceline {

/// Time source abstraction for deadlines. Production code uses the steady
/// wall clock; tests and the fuzzer inject a SimulatedClock so "the deadline
/// fires after the second level" is a deterministic statement instead of a
/// race against the host scheduler.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic seconds since an arbitrary epoch.
  virtual double NowSeconds() const = 0;
};

/// std::chrono::steady_clock-backed default time source.
class SteadyClock : public Clock {
 public:
  double NowSeconds() const override;
  /// Shared process-wide instance.
  static const SteadyClock* Default();
};

/// Deterministic manual clock. Each NowSeconds() query optionally advances
/// time by a fixed step, so a run "consumes" simulated time at every
/// governance check and a deadline fires at a reproducible point of the
/// enumeration regardless of host speed.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(double start_seconds = 0.0,
                          double advance_per_query_seconds = 0.0)
      : now_bits_(Bits(start_seconds)),
        advance_per_query_(advance_per_query_seconds) {}

  double NowSeconds() const override;

  /// Moves time forward by `seconds` (thread-safe).
  void Advance(double seconds);

 private:
  static uint64_t Bits(double v);
  static double FromBits(uint64_t bits);

  mutable std::atomic<uint64_t> now_bits_;
  double advance_per_query_;
};

/// Cooperative cancellation flag shared between a controller thread (which
/// calls Cancel()) and the enumeration/evaluation threads (which poll
/// IsCancelled() at batch boundaries and inside long loops). Cancellation is
/// sticky and idempotent.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Byte-accounted memory budget. Allocation sites (CSR/dense matrices in
/// linalg/, per-level frontier buffers in the engines) charge and release
/// live bytes; the engines poll the two pressure levels at level and
/// candidate-batch boundaries:
///   * over the soft limit (soft_fraction * limit): tighten pruning
///     (degradation ladder) so future levels allocate less;
///   * over the hard limit: stop and return best-so-far partial results.
/// Charging never blocks and never fails -- an over-budget charge simply
/// raises the pressure flags, keeping allocation sites simple and the
/// failure path cooperative.
class MemoryBudget {
 public:
  /// `limit_bytes <= 0` means unlimited (accounting only).
  explicit MemoryBudget(int64_t limit_bytes, double soft_fraction = 0.8);

  void Charge(int64_t bytes);
  void Release(int64_t bytes);

  int64_t used_bytes() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit_bytes() const { return limit_; }
  int64_t soft_limit_bytes() const { return soft_limit_; }

  bool OverSoftLimit() const {
    return limit_ > 0 && used_bytes() > soft_limit_;
  }
  bool OverHardLimit() const { return limit_ > 0 && used_bytes() > limit_; }

 private:
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  int64_t limit_;
  int64_t soft_limit_;
};

/// Ambient per-thread budget that allocation sites charge implicitly, so the
/// linalg matrix classes stay free of governance plumbing. The engines
/// install the run's budget for the duration of the run via
/// ScopedMemoryBudget; worker threads that never install one charge nothing.
MemoryBudget* CurrentMemoryBudget();

/// RAII installer of the ambient thread-local budget (nestable; restores the
/// previous budget on destruction).
class ScopedMemoryBudget {
 public:
  explicit ScopedMemoryBudget(MemoryBudget* budget);
  ~ScopedMemoryBudget();
  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;

 private:
  MemoryBudget* previous_;
};

/// RAII charge of `bytes` against the ambient budget at construction time.
/// Copies re-charge the same byte count against the same budget (the copy is
/// live memory too); moves transfer the charge; destruction releases it.
/// Held as a member, this gives a class live-byte accounting without
/// touching its own special member functions.
class MemoryCharge {
 public:
  MemoryCharge() = default;
  explicit MemoryCharge(int64_t bytes);

  MemoryCharge(const MemoryCharge& other);
  MemoryCharge& operator=(const MemoryCharge& other);
  MemoryCharge(MemoryCharge&& other) noexcept;
  MemoryCharge& operator=(MemoryCharge&& other) noexcept;
  ~MemoryCharge();

  /// Re-sizes the charge in place (e.g. after a container grew).
  void Resize(int64_t bytes);

  int64_t bytes() const { return bytes_; }

 private:
  void ReleaseCharge();

  MemoryBudget* budget_ = nullptr;
  int64_t bytes_ = 0;
};

/// Why a governed run had to stop before its natural end.
enum class StopReason : uint8_t {
  kNone = 0,
  kCancelled,
  kDeadlineExceeded,
  kBudgetExhausted,
};

const char* StopReasonName(StopReason reason);

/// Maps a stop reason onto the matching governance Status (kNone -> OK).
/// Deep loops (evaluator blocks, kernel strides) return this to unwind to
/// the engine, which recognizes it via IsGovernanceStatus and packages
/// best-so-far results instead of treating it as an error.
Status StopReasonToStatus(StopReason reason);

/// Inverse mapping for engines unwinding a governance Status from a deep
/// loop (non-governance codes map to kNone).
StopReason StopReasonFromStatus(const Status& status);

/// Structured description of how a governed run ended. Every engine fills
/// one into SliceLineResult::outcome: a bare abort is never the answer to
/// resource pressure -- the caller always gets the best-so-far top-K plus
/// this record of what was and was not explored.
struct RunOutcome {
  enum class Termination : uint8_t {
    kCompleted = 0,         ///< ran to the natural end, exact results
    kDegraded,              ///< finished, but pruning was tightened en route
    kDeadlineExceeded,      ///< stopped by the deadline
    kCancelled,             ///< stopped by cooperative cancellation
    kBudgetExhausted,       ///< stopped by the hard memory limit
  };

  Termination termination = Termination::kCompleted;
  /// True iff the reported top-K may differ from an ungoverned run (any
  /// termination other than kCompleted).
  bool partial = false;
  /// Degradation-ladder actions taken (0 = none).
  int degradation_steps = 0;
  /// Effective sigma after degradation; 0 when never raised.
  int64_t sigma_raised_to = 0;
  /// Candidates dropped by the per-level degradation cap.
  int64_t candidates_capped = 0;
  /// Level the run stopped inside/after when partial; 0 otherwise.
  int stopped_at_level = 0;
  /// True when the run was seeded from a checkpoint.
  bool resumed_from_checkpoint = false;
  /// Peak governed memory use observed (0 when no budget installed).
  int64_t peak_memory_bytes = 0;
  /// True when a distributed run lost too many workers (or exhausted its
  /// retry budget) and finished on the coordinator's local fallback
  /// evaluator. The results are still exact -- the fallback evaluates the
  /// full matrix -- so this does not make the run partial; it records that
  /// the cluster, not the search, degraded.
  bool dist_fallback_local = false;

  /// Streaming re-evaluation decisions (all zero for non-streaming runs).
  /// Per candidate the incremental evaluator either reused a fully
  /// up-to-date cached statistic, continued a cached statistic over just
  /// the appended rows, or recomputed from row 0.
  int64_t stream_candidates_cached = 0;
  int64_t stream_candidates_delta = 0;
  int64_t stream_candidates_full = 0;
  /// True when the streaming finder declined incremental re-evaluation
  /// because the delta fraction exceeded its threshold and ran the plain
  /// engine over the concatenated data instead.
  bool stream_full_fallback = false;

  static const char* TerminationName(Termination t);

  /// One-line summary ("degraded: sigma raised to 64, 120 candidates
  /// capped, stopped at level 3").
  std::string Summary() const;

  /// Structural consistency: partial <=> termination != kCompleted, counters
  /// non-negative, stopped_at_level set iff partial. The governance fuzzer
  /// asserts this on every outcome.
  bool WellFormed() const;
};

/// Per-run governance handle threaded through the engines (via
/// SliceLineConfig::run_context), the evaluators, the thread pool, and the
/// distributed executor. Owns the cancellation token; borrows the clock and
/// the memory budget (caller-owned, so one budget can govern several runs).
/// A default-constructed RunContext imposes nothing.
class RunContext {
 public:
  RunContext() : clock_(SteadyClock::Default()) {}

  /// Replaces the time source (borrowed; must outlive the context).
  void set_clock(const Clock* clock) { clock_ = clock; }
  const Clock* clock() const { return clock_; }

  /// Sets the deadline `seconds` from now on the installed clock.
  void SetDeadlineAfterSeconds(double seconds);
  /// Absolute deadline in the installed clock's epoch.
  void set_deadline_seconds(double absolute_seconds) {
    deadline_seconds_ = absolute_seconds;
  }
  bool has_deadline() const {
    return deadline_seconds_ != std::numeric_limits<double>::infinity();
  }
  /// Seconds until the deadline (+inf when none); negative once expired.
  double RemainingSeconds() const;

  CancellationToken& cancellation() { return token_; }
  const CancellationToken& cancellation() const { return token_; }

  /// Installs a caller-owned memory budget (nullptr detaches).
  void set_memory_budget(MemoryBudget* budget) { budget_ = budget; }
  MemoryBudget* memory_budget() const { return budget_; }

  /// Polls all stop conditions; precedence: cancellation, deadline, hard
  /// memory limit. This is the check engines run at level boundaries,
  /// candidate-batch boundaries, and (strided) inside long kernel loops.
  StopReason CheckStop() const;
  bool ShouldStop() const { return CheckStop() != StopReason::kNone; }

 private:
  const Clock* clock_;
  double deadline_seconds_ = std::numeric_limits<double>::infinity();
  CancellationToken token_;
  MemoryBudget* budget_ = nullptr;
};

}  // namespace sliceline

#endif  // SLICELINE_COMMON_RUN_CONTEXT_H_
