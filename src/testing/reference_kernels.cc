#include "testing/reference_kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace sliceline::testing {
namespace ref {

using linalg::CsrMatrix;
using linalg::DenseMatrix;

std::vector<double> ColSums(const CsrMatrix& m) {
  const DenseMatrix d = m.ToDense();
  std::vector<double> out(static_cast<size_t>(d.cols()), 0.0);
  for (int64_t c = 0; c < d.cols(); ++c) {
    for (int64_t r = 0; r < d.rows(); ++r) out[c] += d.At(r, c);
  }
  return out;
}

std::vector<double> ColMaxs(const CsrMatrix& m) {
  // Implicit zeros participate automatically: a column with an absent entry
  // has a 0.0 in the dense view (the CSR invariant forbids stored zeros).
  const DenseMatrix d = m.ToDense();
  std::vector<double> out(static_cast<size_t>(d.cols()), 0.0);
  for (int64_t c = 0; c < d.cols(); ++c) {
    double mx = -std::numeric_limits<double>::infinity();
    for (int64_t r = 0; r < d.rows(); ++r) mx = std::max(mx, d.At(r, c));
    out[c] = d.rows() == 0 ? 0.0 : mx;
  }
  return out;
}

std::vector<double> RowSums(const CsrMatrix& m) {
  const DenseMatrix d = m.ToDense();
  std::vector<double> out(static_cast<size_t>(d.rows()), 0.0);
  for (int64_t r = 0; r < d.rows(); ++r) {
    for (int64_t c = 0; c < d.cols(); ++c) out[r] += d.At(r, c);
  }
  return out;
}

std::vector<double> RowMaxs(const CsrMatrix& m) {
  const DenseMatrix d = m.ToDense();
  std::vector<double> out(static_cast<size_t>(d.rows()), 0.0);
  for (int64_t r = 0; r < d.rows(); ++r) {
    double mx = -std::numeric_limits<double>::infinity();
    for (int64_t c = 0; c < d.cols(); ++c) mx = std::max(mx, d.At(r, c));
    out[r] = d.cols() == 0 ? 0.0 : mx;
  }
  return out;
}

std::vector<int64_t> RowNnzCounts(const CsrMatrix& m) {
  const DenseMatrix d = m.ToDense();
  std::vector<int64_t> out(static_cast<size_t>(d.rows()), 0);
  for (int64_t r = 0; r < d.rows(); ++r) {
    for (int64_t c = 0; c < d.cols(); ++c) {
      if (d.At(r, c) != 0.0) ++out[r];
    }
  }
  return out;
}

std::vector<int64_t> RowIndexMax(const CsrMatrix& m) {
  const DenseMatrix d = m.ToDense();
  std::vector<int64_t> out(static_cast<size_t>(d.rows()), -1);
  for (int64_t r = 0; r < d.rows(); ++r) {
    int64_t best = -1;
    double best_val = 0.0;
    for (int64_t c = 0; c < d.cols(); ++c) {
      const double v = d.At(r, c);
      if (v == 0.0) continue;  // only stored entries participate
      if (best == -1 || v > best_val) {
        best = c;
        best_val = v;
      }
    }
    out[r] = best;
  }
  return out;
}

std::vector<double> MatVec(const CsrMatrix& m, const std::vector<double>& x) {
  return m.ToDense().MatVec(x);
}

std::vector<double> TransposeMatVec(const CsrMatrix& m,
                                    const std::vector<double>& x) {
  return m.ToDense().TransposeMatVec(x);
}

DenseMatrix Transpose(const CsrMatrix& m) { return m.ToDense().Transpose(); }

DenseMatrix Multiply(const CsrMatrix& a, const CsrMatrix& b) {
  return a.ToDense().MatMul(b.ToDense());
}

DenseMatrix MultiplyABt(const CsrMatrix& a, const CsrMatrix& b) {
  return a.ToDense().MatMul(b.ToDense().Transpose());
}

DenseMatrix FilterEquals(const CsrMatrix& m, double target) {
  const DenseMatrix d = m.ToDense();
  DenseMatrix out(d.rows(), d.cols(), 0.0);
  for (int64_t r = 0; r < d.rows(); ++r) {
    for (int64_t c = 0; c < d.cols(); ++c) {
      if (d.At(r, c) == target && target != 0.0) out.At(r, c) = 1.0;
    }
  }
  return out;
}

DenseMatrix ScaleRows(const CsrMatrix& m, const std::vector<double>& scale) {
  const DenseMatrix d = m.ToDense();
  DenseMatrix out(d.rows(), d.cols(), 0.0);
  for (int64_t r = 0; r < d.rows(); ++r) {
    for (int64_t c = 0; c < d.cols(); ++c) out.At(r, c) = d.At(r, c) * scale[r];
  }
  return out;
}

DenseMatrix Add(const CsrMatrix& a, const CsrMatrix& b) {
  const DenseMatrix da = a.ToDense();
  const DenseMatrix db = b.ToDense();
  DenseMatrix out(da.rows(), da.cols(), 0.0);
  for (int64_t r = 0; r < da.rows(); ++r) {
    for (int64_t c = 0; c < da.cols(); ++c) {
      out.At(r, c) = da.At(r, c) + db.At(r, c);
    }
  }
  return out;
}

DenseMatrix Binarize(const CsrMatrix& m) {
  const DenseMatrix d = m.ToDense();
  DenseMatrix out(d.rows(), d.cols(), 0.0);
  for (int64_t r = 0; r < d.rows(); ++r) {
    for (int64_t c = 0; c < d.cols(); ++c) {
      if (d.At(r, c) != 0.0) out.At(r, c) = 1.0;
    }
  }
  return out;
}

std::vector<std::pair<int64_t, int64_t>> UpperTriEquals(const CsrMatrix& m,
                                                        double target) {
  const DenseMatrix d = m.ToDense();
  std::vector<std::pair<int64_t, int64_t>> out;
  for (int64_t r = 0; r < d.rows(); ++r) {
    for (int64_t c = r + 1; c < d.cols(); ++c) {
      if (d.At(r, c) == target && target != 0.0) out.emplace_back(r, c);
    }
  }
  return out;
}

std::pair<DenseMatrix, std::vector<int64_t>> RemoveEmptyRows(
    const CsrMatrix& m) {
  const DenseMatrix d = m.ToDense();
  std::vector<int64_t> kept;
  for (int64_t r = 0; r < d.rows(); ++r) {
    bool empty = true;
    for (int64_t c = 0; c < d.cols(); ++c) empty &= d.At(r, c) == 0.0;
    if (!empty) kept.push_back(r);
  }
  DenseMatrix out(static_cast<int64_t>(kept.size()), d.cols(), 0.0);
  for (size_t i = 0; i < kept.size(); ++i) {
    for (int64_t c = 0; c < d.cols(); ++c) {
      out.At(static_cast<int64_t>(i), c) = d.At(kept[i], c);
    }
  }
  return {std::move(out), std::move(kept)};
}

DenseMatrix SelectRows(const CsrMatrix& m, const std::vector<uint8_t>& keep) {
  const DenseMatrix d = m.ToDense();
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < d.rows(); ++r) {
    if (keep[r] != 0) rows.push_back(r);
  }
  return GatherRows(m, rows);
}

DenseMatrix GatherRows(const CsrMatrix& m, const std::vector<int64_t>& rows) {
  const DenseMatrix d = m.ToDense();
  DenseMatrix out(static_cast<int64_t>(rows.size()), d.cols(), 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int64_t c = 0; c < d.cols(); ++c) {
      out.At(static_cast<int64_t>(i), c) = d.At(rows[i], c);
    }
  }
  return out;
}

DenseMatrix SelectColumns(const CsrMatrix& m,
                          const std::vector<int64_t>& cols) {
  const DenseMatrix d = m.ToDense();
  DenseMatrix out(d.rows(), static_cast<int64_t>(cols.size()), 0.0);
  for (int64_t r = 0; r < d.rows(); ++r) {
    for (size_t j = 0; j < cols.size(); ++j) {
      out.At(r, static_cast<int64_t>(j)) = d.At(r, cols[j]);
    }
  }
  return out;
}

DenseMatrix Rbind(const CsrMatrix& top, const CsrMatrix& bottom) {
  const DenseMatrix dt = top.ToDense();
  const DenseMatrix db = bottom.ToDense();
  DenseMatrix out(dt.rows() + db.rows(), dt.cols(), 0.0);
  for (int64_t r = 0; r < dt.rows(); ++r) {
    for (int64_t c = 0; c < dt.cols(); ++c) out.At(r, c) = dt.At(r, c);
  }
  for (int64_t r = 0; r < db.rows(); ++r) {
    for (int64_t c = 0; c < db.cols(); ++c) {
      out.At(dt.rows() + r, c) = db.At(r, c);
    }
  }
  return out;
}

DenseMatrix SliceRowRange(const CsrMatrix& m, int64_t begin, int64_t end) {
  const DenseMatrix d = m.ToDense();
  DenseMatrix out(end - begin, d.cols(), 0.0);
  for (int64_t r = begin; r < end; ++r) {
    for (int64_t c = 0; c < d.cols(); ++c) out.At(r - begin, c) = d.At(r, c);
  }
  return out;
}

DenseMatrix Table(const std::vector<int64_t>& rix,
                  const std::vector<int64_t>& cix, int64_t rows, int64_t cols) {
  DenseMatrix out(rows, cols, 0.0);
  for (size_t k = 0; k < rix.size(); ++k) out.At(rix[k], cix[k]) += 1.0;
  return out;
}

std::vector<double> CumSum(const std::vector<double>& v) {
  std::vector<double> out(v.size());
  double acc = 0.0;
  for (size_t i = 0; i < v.size(); ++i) out[i] = acc += v[i];
  return out;
}

std::vector<double> CumProd(const std::vector<double>& v) {
  std::vector<double> out(v.size());
  double acc = 1.0;
  for (size_t i = 0; i < v.size(); ++i) out[i] = acc *= v[i];
  return out;
}

std::vector<int64_t> OrderDesc(const std::vector<double>& v) {
  // Selection sort with strict > and first-wins ties: the stable descending
  // order contract, written without delegating to std::stable_sort.
  std::vector<int64_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i + 1 < idx.size(); ++i) {
    size_t best = i;
    for (size_t j = i + 1; j < idx.size(); ++j) {
      // Pick j over best only if strictly larger, or equal with a smaller
      // original index (stability).
      if (v[idx[j]] > v[idx[best]] ||
          (v[idx[j]] == v[idx[best]] && idx[j] < idx[best])) {
        best = j;
      }
    }
    std::swap(idx[i], idx[best]);
  }
  return idx;
}

}  // namespace ref

std::string CheckCsrInvariants(const linalg::CsrMatrix& m) {
  std::ostringstream os;
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const auto& values = m.values();
  if (static_cast<int64_t>(row_ptr.size()) != m.rows() + 1) {
    return "row_ptr size mismatch";
  }
  if (row_ptr.front() != 0 ||
      row_ptr.back() != static_cast<int64_t>(col_idx.size()) ||
      col_idx.size() != values.size()) {
    return "row_ptr endpoints / array sizes inconsistent";
  }
  for (int64_t r = 0; r < m.rows(); ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      os << "row_ptr not monotone at row " << r;
      return os.str();
    }
    for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] < 0 || col_idx[k] >= m.cols()) {
        os << "column out of range at row " << r;
        return os.str();
      }
      if (k > row_ptr[r] && col_idx[k] <= col_idx[k - 1]) {
        os << "columns not strictly ascending at row " << r;
        return os.str();
      }
      if (values[k] == 0.0) {
        os << "stored explicit zero at (" << r << "," << col_idx[k] << ")";
        return os.str();
      }
    }
  }
  return "";
}

std::string CompareToDense(const linalg::CsrMatrix& actual,
                           const linalg::DenseMatrix& expected,
                           double tolerance, const std::string& label) {
  std::ostringstream os;
  std::string invariants = CheckCsrInvariants(actual);
  if (!invariants.empty()) {
    os << label << ": CSR invariant violated: " << invariants;
    return os.str();
  }
  if (actual.rows() != expected.rows() || actual.cols() != expected.cols()) {
    os << label << ": shape mismatch " << actual.rows() << "x" << actual.cols()
       << " vs " << expected.rows() << "x" << expected.cols();
    return os.str();
  }
  const linalg::DenseMatrix got = actual.ToDense();
  for (int64_t r = 0; r < got.rows(); ++r) {
    for (int64_t c = 0; c < got.cols(); ++c) {
      const double a = got.At(r, c);
      const double e = expected.At(r, c);
      if (std::abs(a - e) > tolerance) {
        os << label << ": mismatch at (" << r << "," << c << "): got " << a
           << " want " << e;
        return os.str();
      }
    }
  }
  return "";
}

std::string CompareVectors(const std::vector<double>& actual,
                           const std::vector<double>& expected,
                           double tolerance, const std::string& label) {
  std::ostringstream os;
  if (actual.size() != expected.size()) {
    os << label << ": length mismatch " << actual.size() << " vs "
       << expected.size();
    return os.str();
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    const bool both_inf = std::isinf(actual[i]) && std::isinf(expected[i]) &&
                          (actual[i] > 0) == (expected[i] > 0);
    if (!both_inf && std::abs(actual[i] - expected[i]) > tolerance) {
      os << label << ": mismatch at [" << i << "]: got " << actual[i]
         << " want " << expected[i];
      return os.str();
    }
  }
  return "";
}

std::string CompareIntVectors(const std::vector<int64_t>& actual,
                              const std::vector<int64_t>& expected,
                              const std::string& label) {
  std::ostringstream os;
  if (actual.size() != expected.size()) {
    os << label << ": length mismatch " << actual.size() << " vs "
       << expected.size();
    return os.str();
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] != expected[i]) {
      os << label << ": mismatch at [" << i << "]: got " << actual[i]
         << " want " << expected[i];
      return os.str();
    }
  }
  return "";
}

linalg::CsrMatrix RandomCsr(Rng& rng, int64_t max_rows, int64_t max_cols) {
  return RandomCsrShaped(rng, rng.NextInt(1, max_rows),
                         rng.NextInt(1, max_cols));
}

linalg::CsrMatrix RandomCsrShaped(Rng& rng, int64_t rows, int64_t cols) {
  const double density = rng.NextDouble(0.0, 0.9);
  linalg::CooBuilder builder(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (!rng.NextBool(density)) continue;
      // Small integers dominate so equality kernels and Add-cancellation see
      // collisions; occasional continuous values cover the general case.
      double v;
      if (rng.NextBool(0.7)) {
        v = static_cast<double>(rng.NextInt(-3, 3));
        if (v == 0.0) continue;  // keep the no-stored-zeros invariant
      } else {
        v = rng.NextDouble(-2.0, 2.0);
        if (v == 0.0) continue;
      }
      builder.Add(r, c, v);
    }
  }
  return builder.Build();
}

}  // namespace sliceline::testing
