#ifndef SLICELINE_ML_PIPELINE_H_
#define SLICELINE_ML_PIPELINE_H_

#include "common/status.h"
#include "data/encoded_dataset.h"
#include "data/onehot.h"

namespace sliceline::ml {

/// End-to-end model-debugging preparation: one-hot encodes the dataset,
/// trains the paper's model family for its task (lm for regression, mlogit
/// for classification), and materializes the error vector (squared loss /
/// inaccuracy) into `dataset->errors`, overwriting any simulated errors.
/// Returns the training error mean for reporting.
StatusOr<double> TrainAndMaterializeErrors(data::EncodedDataset* dataset);

/// Derives artificial labels by clustering the one-hot rows with k-means
/// (the paper's treatment of the unlabeled USCensus dataset); sets
/// dataset->y, task to classification, and num_classes to k.
Status DeriveLabelsByClustering(data::EncodedDataset* dataset, int k);

}  // namespace sliceline::ml

#endif  // SLICELINE_ML_PIPELINE_H_
