// Reproduces Figure 5 (Scores with Varying Scoring Parameters): top-1 slice
// score and size for alpha in {0.36, 0.68, 0.84, 0.92, 0.96, 0.98, 0.99}
// with sigma = n/100 and ceil(L) = 3, on four datasets.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"

int main() {
  using namespace sliceline;
  bench::Banner("Figure 5: Scores with Varying alpha",
                "SliceLine Figure 5(a) top-1 score, 5(b) top-1 size");
  bench::Reporter reporter(
      "bench_fig5_alpha", "SliceLine Figure 5(a) top-1 score, 5(b) top-1 size");
  const std::vector<double> alphas = {0.36, 0.68, 0.84, 0.92,
                                      0.96, 0.98, 0.99};
  const std::vector<const char*> names = {"adult", "covtype", "kdd98",
                                          "uscensus"};

  for (const char* name : names) {
    // Row counts tuned so the 7-point alpha sweep stays interactive on a
    // single core; trends (score up, size down with alpha) are unaffected.
    int64_t rows = 0;
    if (std::string(name) == "covtype" || std::string(name) == "uscensus") {
      rows = 12000;
    } else if (std::string(name) == "kdd98") {
      rows = 1500;
    }
    data::EncodedDataset ds = bench::Load(name, rows);
    std::printf("%s (n=%s):\n", name, FormatWithCommas(ds.n()).c_str());
    std::printf("  %-8s %12s %12s %10s\n", "alpha", "top1-score",
                "top1-size", "time[s]");
    for (double alpha : alphas) {
      core::SliceLineConfig config;
      config.alpha = alpha;
      config.k = 4;
      config.max_level = 3;
      core::SliceLineResult result =
          bench::Unwrap(core::RunSliceLine(ds, config), name);
      if (result.top_k.empty()) {
        std::printf("  %-8s %12s %12s %10s\n",
                    FormatDouble(alpha, 2).c_str(), "-", "-",
                    FormatDouble(result.total_seconds, 3).c_str());
      } else {
        std::printf("  %-8s %12s %12s %10s\n",
                    FormatDouble(alpha, 2).c_str(),
                    FormatDouble(result.top_k[0].stats.score, 4).c_str(),
                    FormatWithCommas(result.top_k[0].stats.size).c_str(),
                    FormatDouble(result.total_seconds, 3).c_str());
      }
      reporter.AddRow(
          std::string(name) + "/alpha_" + FormatDouble(alpha, 2),
          {{"top1_score",
            result.top_k.empty() ? 0.0 : result.top_k[0].stats.score},
           {"top1_size",
            result.top_k.empty()
                ? 0.0
                : static_cast<double>(result.top_k[0].stats.size)},
           {"seconds", result.total_seconds}});
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): with increasing alpha, top-1 scores increase\n"
      "and top-1 sizes decrease (the error term gains weight).\n");
  return reporter.Finish();
}
