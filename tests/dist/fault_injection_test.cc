#include "dist/fault_injection.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sliceline.h"
#include "dist/distributed_evaluator.h"

namespace sliceline::dist {
namespace {

struct RandomInput {
  data::IntMatrix x0;
  std::vector<double> errors;
};

RandomInput MakeRandom(uint64_t seed, int64_t n, int m, int max_dom) {
  Rng rng(seed);
  RandomInput input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(max_dom)) + 1;
    }
  }
  input.errors.resize(n);
  for (auto& e : input.errors) e = rng.NextBool(0.3) ? rng.NextDouble() : 0.0;
  return input;
}

core::SliceLineConfig TestConfig() {
  core::SliceLineConfig config;
  config.k = 6;
  config.min_support = 15;
  return config;
}

struct DistRun {
  core::SliceLineResult result;
  DistCostStats cost;
  DistFaultStats faults;
  int alive_workers = 0;
};

/// Runs the distributed enumeration with optional scripted faults applied to
/// every logical round in [0, 16) for the given workers.
DistRun RunWithFaults(const RandomInput& input, const DistOptions& options,
                      const std::vector<std::pair<int, FaultType>>& scripts) {
  auto evaluator =
      DistributedSliceEvaluator::Create(input.x0, input.errors, options);
  EXPECT_TRUE(evaluator.ok()) << evaluator.status().ToString();
  for (const auto& [worker, type] : scripts) {
    for (int64_t round = 0; round < 16; ++round) {
      evaluator.value()->injector().Script(round, worker, type);
    }
  }
  auto result = core::RunSliceLineWithBackend(**evaluator, TestConfig());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return DistRun{std::move(result).value(), evaluator.value()->cost(),
                 evaluator.value()->faults(),
                 evaluator.value()->alive_workers()};
}

/// Exact (bit-identical) agreement of the top-K slices and scores.
void ExpectIdenticalTopK(const core::SliceLineResult& a,
                         const core::SliceLineResult& b) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size());
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_EQ(a.top_k[i].predicates, b.top_k[i].predicates) << "slice " << i;
    EXPECT_EQ(a.top_k[i].stats.score, b.top_k[i].stats.score) << "slice " << i;
    EXPECT_EQ(a.top_k[i].stats.size, b.top_k[i].stats.size) << "slice " << i;
    EXPECT_EQ(a.top_k[i].stats.error_sum, b.top_k[i].stats.error_sum)
        << "slice " << i;
  }
}

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_EQ(injector.Sample(0, 0, 0), FaultType::kNone);
}

TEST(FaultInjectorTest, SampleIsDeterministicAndSeedSensitive) {
  FaultPlan plan;
  plan.seed = 7;
  plan.transient_rate = 0.3;
  plan.straggler_rate = 0.3;
  FaultInjector a(plan);
  FaultInjector b(plan);
  plan.seed = 8;
  FaultInjector c(plan);
  int diffs = 0;
  for (int64_t round = 0; round < 50; ++round) {
    for (int worker = 0; worker < 4; ++worker) {
      EXPECT_EQ(a.Sample(round, worker, 0), b.Sample(round, worker, 0));
      if (a.Sample(round, worker, 0) != c.Sample(round, worker, 0)) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);  // a different seed produces a different schedule
}

TEST(FaultInjectorTest, ScriptedFaultFiresOnFirstAttemptOnly) {
  FaultInjector injector;
  injector.Script(3, 1, FaultType::kTransient);
  EXPECT_EQ(injector.Sample(3, 1, 0), FaultType::kTransient);
  EXPECT_EQ(injector.Sample(3, 1, 1), FaultType::kNone);  // retry succeeds
  EXPECT_EQ(injector.Sample(3, 0, 0), FaultType::kNone);
  EXPECT_EQ(injector.Sample(2, 1, 0), FaultType::kNone);
}

TEST(FaultInjectorTest, ChecksumDetectsCorruption) {
  core::EvalResult partial;
  partial.sizes = {4.0, 2.0};
  partial.error_sums = {0.5, 0.25};
  partial.max_errors = {0.9, 0.4};
  const uint64_t before = ChecksumPartial(partial);
  FaultPlan plan;
  plan.seed = 3;
  FaultInjector injector(plan);
  injector.CorruptPartial(0, 1, &partial);
  EXPECT_NE(ChecksumPartial(partial), before);
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest() : input_(MakeRandom(11, 600, 5, 4)) {
    DistOptions options;
    options.workers = 4;
    fault_free_ = RunWithFaults(input_, options, {});
  }
  RandomInput input_;
  DistRun fault_free_;
};

TEST_F(FaultToleranceTest, TransientFailureRetriesWithBackoff) {
  DistOptions options;
  options.workers = 4;
  DistRun run = RunWithFaults(input_, options,
                              {{1, FaultType::kTransient}});
  ExpectIdenticalTopK(fault_free_.result, run.result);
  EXPECT_GT(run.faults.transient_failures, 0);
  EXPECT_GT(run.faults.retries, 0);
  EXPECT_GT(run.faults.backoff_events, 0);
  EXPECT_GT(run.faults.backoff_seconds, 0.0);
  // Every retry wave re-broadcasts: more rounds than the fault-free run.
  EXPECT_GT(run.cost.rounds, fault_free_.cost.rounds);
  EXPECT_FALSE(run.faults.fallback_local);
}

TEST_F(FaultToleranceTest, PermanentLossReshardsOntoSurvivors) {
  DistOptions options;
  options.workers = 4;
  DistRun run = RunWithFaults(input_, options,
                              {{2, FaultType::kPermanentLoss}});
  ExpectIdenticalTopK(fault_free_.result, run.result);
  EXPECT_EQ(run.faults.workers_lost, 1);
  EXPECT_GT(run.faults.reshards, 0);
  EXPECT_EQ(run.alive_workers, 3);
  EXPECT_FALSE(run.faults.fallback_local);
}

TEST_F(FaultToleranceTest, KofNLossStillReproducesTopK) {
  // 2 of 4 workers lost (exactly the 0.5 default threshold, not past it).
  DistOptions options;
  options.workers = 4;
  DistRun run = RunWithFaults(
      input_, options,
      {{1, FaultType::kPermanentLoss}, {3, FaultType::kPermanentLoss}});
  ExpectIdenticalTopK(fault_free_.result, run.result);
  EXPECT_EQ(run.faults.workers_lost, 2);
  EXPECT_EQ(run.alive_workers, 2);
  EXPECT_FALSE(run.faults.fallback_local);
}

TEST_F(FaultToleranceTest, CorruptionDetectedAndForcesRetryRound) {
  DistOptions options;
  options.workers = 4;
  DistRun run = RunWithFaults(input_, options,
                              {{0, FaultType::kCorruption}});
  ExpectIdenticalTopK(fault_free_.result, run.result);
  EXPECT_GT(run.faults.corrupted_partials, 0);
  EXPECT_GT(run.faults.retries, 0);
  // Corruption detection triggers a re-evaluation wave: rounds grow.
  EXPECT_GT(run.cost.rounds, fault_free_.cost.rounds);
  EXPECT_FALSE(run.faults.fallback_local);
}

TEST_F(FaultToleranceTest, StragglerTriggersSpeculativeReexecution) {
  DistOptions options;
  options.workers = 4;
  DistRun run = RunWithFaults(input_, options,
                              {{3, FaultType::kStraggler}});
  ExpectIdenticalTopK(fault_free_.result, run.result);
  EXPECT_GT(run.faults.stragglers, 0);
  // With 4 workers and no losses a survivor is always available, so every
  // straggling round launches exactly one backup copy. (The backup doubles
  // the straggler's *accounted* compute, but worker_busy_seconds is
  // measured wall-clock — comparing it across two separately-timed runs is
  // load-sensitive, so the counters carry the assertion.)
  EXPECT_EQ(run.faults.speculative_reexecutions, run.faults.stragglers);
}

TEST_F(FaultToleranceTest, StragglerWithoutSpeculationPaysDelay) {
  DistOptions options;
  options.workers = 4;
  options.speculative_execution = false;
  options.fault.straggler_delay_seconds = 1.5;
  DistRun run = RunWithFaults(input_, options,
                              {{3, FaultType::kStraggler}});
  ExpectIdenticalTopK(fault_free_.result, run.result);
  EXPECT_GT(run.faults.stragglers, 0);
  EXPECT_EQ(run.faults.speculative_reexecutions, 0);
  // Each straggling round adds the injected delay to the critical path.
  EXPECT_GT(run.cost.critical_path_seconds, 1.5);
}

TEST_F(FaultToleranceTest, TooManyLossesFallBackToLocal) {
  DistOptions options;
  options.workers = 4;  // losing 3 of 4 exceeds max_lost_fraction = 0.5
  DistRun run = RunWithFaults(input_, options,
                              {{0, FaultType::kPermanentLoss},
                               {1, FaultType::kPermanentLoss},
                               {2, FaultType::kPermanentLoss}});
  EXPECT_TRUE(run.faults.fallback_local);
  EXPECT_EQ(run.faults.workers_lost, 3);
  // The degraded run computes over the full matrix; slices and integer
  // statistics are identical, scores agree to float-sum reassociation.
  ASSERT_EQ(fault_free_.result.top_k.size(), run.result.top_k.size());
  for (size_t i = 0; i < run.result.top_k.size(); ++i) {
    EXPECT_EQ(fault_free_.result.top_k[i].predicates,
              run.result.top_k[i].predicates);
    EXPECT_EQ(fault_free_.result.top_k[i].stats.size,
              run.result.top_k[i].stats.size);
    EXPECT_NEAR(fault_free_.result.top_k[i].stats.score,
                run.result.top_k[i].stats.score, 1e-9);
  }
}

TEST_F(FaultToleranceTest, ExhaustedRetryBudgetDegradesGracefully) {
  DistOptions options;
  options.workers = 4;
  options.max_retries = 2;
  options.fault.seed = 5;
  options.fault.transient_rate = 1.0;  // every attempt of every round fails
  DistRun run = RunWithFaults(input_, options, {});
  EXPECT_TRUE(run.faults.fallback_local);
  ASSERT_EQ(fault_free_.result.top_k.size(), run.result.top_k.size());
  for (size_t i = 0; i < run.result.top_k.size(); ++i) {
    EXPECT_EQ(fault_free_.result.top_k[i].predicates,
              run.result.top_k[i].predicates);
    EXPECT_NEAR(fault_free_.result.top_k[i].stats.score,
                run.result.top_k[i].stats.score, 1e-9);
  }
}

TEST_F(FaultToleranceTest, RandomScheduleIsDeterministicPerSeed) {
  DistOptions options;
  options.workers = 6;
  options.fault.seed = 99;
  options.fault.transient_rate = 0.15;
  options.fault.straggler_rate = 0.1;
  options.fault.corruption_rate = 0.1;
  options.fault.loss_rate = 0.02;
  DistRun first = RunWithFaults(input_, options, {});
  DistRun second = RunWithFaults(input_, options, {});
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.cost.rounds, second.cost.rounds);
  ExpectIdenticalTopK(first.result, second.result);
  if (!first.faults.fallback_local) {
    // Bit-identical to a fault-free run over the same shard layout.
    DistOptions clean = options;
    clean.fault = FaultPlan{};
    ExpectIdenticalTopK(RunWithFaults(input_, clean, {}).result,
                        first.result);
  }
}

TEST_F(FaultToleranceTest, MixedScheduleUnderThreadsMatchesSerial) {
  DistOptions options;
  options.workers = 4;
  options.fault.seed = 123;
  options.fault.transient_rate = 0.2;
  options.fault.straggler_rate = 0.2;
  DistRun serial = RunWithFaults(input_, options, {});
  options.use_threads = true;
  DistRun threaded = RunWithFaults(input_, options, {});
  EXPECT_EQ(serial.faults, threaded.faults);
  ExpectIdenticalTopK(serial.result, threaded.result);
}

TEST(DistFactoryTest, CreateValidatesInputs) {
  RandomInput input = MakeRandom(13, 50, 2, 3);
  DistOptions options;
  options.workers = 0;
  EXPECT_FALSE(
      DistributedSliceEvaluator::Create(input.x0, input.errors, options).ok());
  options.workers = 2;
  std::vector<double> wrong(10, 0.1);
  auto mismatch = DistributedSliceEvaluator::Create(input.x0, wrong, options);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
  options.max_lost_fraction = 1.5;
  EXPECT_FALSE(
      DistributedSliceEvaluator::Create(input.x0, input.errors, options).ok());
  options.max_lost_fraction = 0.5;
  options.max_retries = -1;
  EXPECT_FALSE(
      DistributedSliceEvaluator::Create(input.x0, input.errors, options).ok());
  options.max_retries = 3;
  EXPECT_TRUE(
      DistributedSliceEvaluator::Create(input.x0, input.errors, options).ok());
}

TEST(DistFaultStatsTest, SummaryMentionsEveryCounter) {
  DistFaultStats stats;
  stats.retries = 2;
  stats.fallback_local = true;
  const std::string s = stats.Summary();
  EXPECT_NE(s.find("retries=2"), std::string::npos);
  EXPECT_NE(s.find("fallback=yes"), std::string::npos);
}

}  // namespace
}  // namespace sliceline::dist
