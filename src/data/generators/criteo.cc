#include <algorithm>

#include <cmath>

#include "common/rng.h"
#include "data/generators/generators.h"
#include "data/generators/planted_slices.h"

namespace sliceline::data {

// CriteoD21-like click-log dataset: 13 binned numeric features (10 bins
// each) and 26 high-cardinality categorical features with heavy-tailed
// (zipf) frequencies, so that after one-hot encoding the matrix is
// ultra-sparse and only a tiny fraction of the one-hot columns clears the
// minimum-support constraint (the paper: 209 of 75,573,541). Categorical
// domains scale with n to preserve that ratio at laptop scale. Correlated
// categorical pairs mirror the cross-feature correlations that hinder early
// termination (Table 2 runs to level 6).
EncodedDataset MakeCriteo(const DatasetOptions& options) {
  const int64_t n = internal::ResolveRows(options, 100000);  // paper: 192M
  Rng rng(options.seed + 5);

  const int kNumeric = 13;
  const int kCategorical = 26;
  const int m = kNumeric + kCategorical;
  // Domain of each categorical feature: ~1.5% of n distinct values each,
  // min 50; the zipf draw concentrates mass on the first few codes.
  const int32_t cat_domain =
      std::max<int32_t>(50, static_cast<int32_t>(n / 50));

  EncodedDataset ds;
  ds.name = "criteo";
  ds.task = Task::kClassification;
  ds.num_classes = 2;
  ds.x0 = IntMatrix(n, m);
  for (int j = 0; j < kNumeric; ++j) {
    ds.feature_names.push_back("I" + std::to_string(j + 1));
  }
  for (int j = 0; j < kCategorical; ++j) {
    ds.feature_names.push_back("C" + std::to_string(j + 1));
  }

  for (int j = 0; j < kNumeric; ++j) {
    FillCategorical(ds.x0, j, 10, 0.8, rng);
  }
  for (int j = 0; j < kCategorical; ++j) {
    FillCategorical(ds.x0, kNumeric + j, cat_domain, 1.35, rng);
  }
  // Correlated feature groups (site/publisher/campaign ids co-occur, and
  // several numeric counters track each other). Deep chains of correlated
  // features keep conjunctions of frequent codes large, which is why the
  // paper's Criteo enumeration keeps growing through level 6 instead of
  // terminating early (Table 2).
  FillCorrelatedGroup(ds.x0, {0, 1, 2, 3}, {10, 10, 10, 10}, 0.15, rng);
  for (int64_t i = 0; i < n; ++i) {
    if (!rng.NextBool(0.15)) {
      // One shared heavy-tailed latent behind twelve categorical features:
      // conjunctions of matching codes multiply combinatorially with depth
      // (C(12, L) per frequent code), reproducing Table 2's growth.
      const int32_t latent = ds.x0.At(i, kNumeric + 0);
      for (int g = 1; g < 12; ++g) ds.x0.At(i, kNumeric + g) = latent;
    }
  }

  ds.y.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double logit = -2.5 + 0.1 * ds.x0.At(i, 0) +
                         (ds.x0.At(i, kNumeric) <= 3 ? 0.8 : 0.0);
    ds.y[i] = rng.NextBool(1.0 / (1.0 + std::exp(-logit))) ? 1.0 : 0.0;
  }

  ds.planted.push_back(PlantedSlice{{{0, 9}, {13, 1}}, 1.9});
  ds.planted.push_back(PlantedSlice{{{14, 2}, {15, 2}}, 1.6});
  ds.planted.push_back(PlantedSlice{{{5, 10}}, 1.3});

  // Bake the planted difficulty into the labels so trained models
  // genuinely struggle on these slices (held-out debugging works).
  InjectPlantedDifficulty(&ds, 0.0, 0.25, rng);

  ErrorSimOptions err;
  err.base_rate = 0.12;
  err.planted_rate = 0.40;
  ds.errors = SimulateModelErrors(ds, err, rng);
  return ds;
}

}  // namespace sliceline::data
