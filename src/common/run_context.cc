#include "common/run_context.h"

#include <chrono>
#include <cstring>
#include <sstream>

namespace sliceline {

double SteadyClock::NowSeconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const SteadyClock* SteadyClock::Default() {
  static const SteadyClock clock;
  return &clock;
}

uint64_t SimulatedClock::Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double SimulatedClock::FromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double SimulatedClock::NowSeconds() const {
  if (advance_per_query_ == 0.0) {
    return FromBits(now_bits_.load(std::memory_order_acquire));
  }
  // Auto-advance: each query observes the pre-advance time and moves the
  // clock forward, so N checks consume N * advance_per_query_ seconds.
  uint64_t observed = now_bits_.load(std::memory_order_acquire);
  for (;;) {
    const double now = FromBits(observed);
    const uint64_t next = Bits(now + advance_per_query_);
    if (now_bits_.compare_exchange_weak(observed, next,
                                        std::memory_order_acq_rel)) {
      return now;
    }
  }
}

void SimulatedClock::Advance(double seconds) {
  uint64_t observed = now_bits_.load(std::memory_order_acquire);
  for (;;) {
    const uint64_t next = Bits(FromBits(observed) + seconds);
    if (now_bits_.compare_exchange_weak(observed, next,
                                        std::memory_order_acq_rel)) {
      return;
    }
  }
}

MemoryBudget::MemoryBudget(int64_t limit_bytes, double soft_fraction)
    : limit_(limit_bytes > 0 ? limit_bytes : 0) {
  if (soft_fraction < 0.0) soft_fraction = 0.0;
  if (soft_fraction > 1.0) soft_fraction = 1.0;
  soft_limit_ = static_cast<int64_t>(static_cast<double>(limit_) *
                                     soft_fraction);
}

void MemoryBudget::Charge(int64_t bytes) {
  if (bytes <= 0) return;
  const int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) +
                      bytes;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryBudget::Release(int64_t bytes) {
  if (bytes <= 0) return;
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

namespace {
thread_local MemoryBudget* t_current_budget = nullptr;
}  // namespace

MemoryBudget* CurrentMemoryBudget() { return t_current_budget; }

ScopedMemoryBudget::ScopedMemoryBudget(MemoryBudget* budget)
    : previous_(t_current_budget) {
  t_current_budget = budget;
}

ScopedMemoryBudget::~ScopedMemoryBudget() { t_current_budget = previous_; }

MemoryCharge::MemoryCharge(int64_t bytes)
    : budget_(t_current_budget), bytes_(bytes > 0 ? bytes : 0) {
  if (budget_ != nullptr) budget_->Charge(bytes_);
}

MemoryCharge::MemoryCharge(const MemoryCharge& other)
    : budget_(other.budget_), bytes_(other.bytes_) {
  if (budget_ != nullptr) budget_->Charge(bytes_);
}

MemoryCharge& MemoryCharge::operator=(const MemoryCharge& other) {
  if (this == &other) return *this;
  ReleaseCharge();
  budget_ = other.budget_;
  bytes_ = other.bytes_;
  if (budget_ != nullptr) budget_->Charge(bytes_);
  return *this;
}

MemoryCharge::MemoryCharge(MemoryCharge&& other) noexcept
    : budget_(other.budget_), bytes_(other.bytes_) {
  other.budget_ = nullptr;
  other.bytes_ = 0;
}

MemoryCharge& MemoryCharge::operator=(MemoryCharge&& other) noexcept {
  if (this == &other) return *this;
  ReleaseCharge();
  budget_ = other.budget_;
  bytes_ = other.bytes_;
  other.budget_ = nullptr;
  other.bytes_ = 0;
  return *this;
}

MemoryCharge::~MemoryCharge() { ReleaseCharge(); }

void MemoryCharge::Resize(int64_t bytes) {
  if (bytes < 0) bytes = 0;
  if (budget_ == nullptr) {
    // Adopt the ambient budget if one appeared since construction; a charge
    // created outside any scope stays unaccounted.
    budget_ = t_current_budget;
    if (budget_ == nullptr) {
      bytes_ = bytes;
      return;
    }
    budget_->Charge(bytes);
    bytes_ = bytes;
    return;
  }
  if (bytes > bytes_) {
    budget_->Charge(bytes - bytes_);
  } else if (bytes < bytes_) {
    budget_->Release(bytes_ - bytes);
  }
  bytes_ = bytes;
}

void MemoryCharge::ReleaseCharge() {
  if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
  budget_ = nullptr;
  bytes_ = 0;
}

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadlineExceeded: return "deadline-exceeded";
    case StopReason::kBudgetExhausted: return "budget-exhausted";
  }
  return "unknown";
}

Status StopReasonToStatus(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return Status::OK();
    case StopReason::kCancelled:
      return Status::Cancelled("run cancelled");
    case StopReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("run deadline exceeded");
    case StopReason::kBudgetExhausted:
      return Status::ResourceExhausted("memory budget exhausted");
  }
  return Status::Internal("unknown stop reason");
}

StopReason StopReasonFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
      return StopReason::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return StopReason::kDeadlineExceeded;
    case StatusCode::kResourceExhausted:
      return StopReason::kBudgetExhausted;
    default:
      return StopReason::kNone;
  }
}

const char* RunOutcome::TerminationName(Termination t) {
  switch (t) {
    case Termination::kCompleted: return "completed";
    case Termination::kDegraded: return "degraded";
    case Termination::kDeadlineExceeded: return "deadline-exceeded";
    case Termination::kCancelled: return "cancelled";
    case Termination::kBudgetExhausted: return "budget-exhausted";
  }
  return "unknown";
}

std::string RunOutcome::Summary() const {
  std::ostringstream os;
  os << TerminationName(termination);
  if (resumed_from_checkpoint) os << ", resumed from checkpoint";
  if (degradation_steps > 0) {
    os << ", " << degradation_steps << " degradation step"
       << (degradation_steps > 1 ? "s" : "");
    if (sigma_raised_to > 0) os << " (sigma raised to " << sigma_raised_to
                                << ")";
    if (candidates_capped > 0) os << ", " << candidates_capped
                                  << " candidates capped";
  }
  if (partial && stopped_at_level > 0) {
    os << ", stopped at level " << stopped_at_level;
  }
  if (peak_memory_bytes > 0) {
    os << ", peak memory " << peak_memory_bytes << " bytes";
  }
  if (dist_fallback_local) os << ", distributed fallback to local";
  return os.str();
}

bool RunOutcome::WellFormed() const {
  // Any run that was degraded or truncated may miss slices an ungoverned
  // run finds, so partial must track the termination kind exactly.
  if (partial != (termination != Termination::kCompleted)) return false;
  if (degradation_steps < 0 || sigma_raised_to < 0 ||
      candidates_capped < 0 || stopped_at_level < 0 ||
      peak_memory_bytes < 0 || stream_candidates_cached < 0 ||
      stream_candidates_delta < 0 || stream_candidates_full < 0) {
    return false;
  }
  // A run that fell back to the plain engine never made per-candidate
  // incremental decisions.
  if (stream_full_fallback &&
      (stream_candidates_cached > 0 || stream_candidates_delta > 0 ||
       stream_candidates_full > 0)) {
    return false;
  }
  if (degradation_steps == 0 &&
      (sigma_raised_to > 0 || candidates_capped > 0)) {
    return false;
  }
  if (termination == Termination::kDegraded && degradation_steps == 0) {
    return false;
  }
  return true;
}

void RunContext::SetDeadlineAfterSeconds(double seconds) {
  deadline_seconds_ = clock_->NowSeconds() + seconds;
}

double RunContext::RemainingSeconds() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  return deadline_seconds_ - clock_->NowSeconds();
}

StopReason RunContext::CheckStop() const {
  if (token_.IsCancelled()) return StopReason::kCancelled;
  if (has_deadline() && clock_->NowSeconds() >= deadline_seconds_) {
    return StopReason::kDeadlineExceeded;
  }
  if (budget_ != nullptr && budget_->OverHardLimit()) {
    return StopReason::kBudgetExhausted;
  }
  return StopReason::kNone;
}

}  // namespace sliceline
