file(REMOVE_RECURSE
  "CMakeFiles/bench_bestfirst_ablation.dir/bench_bestfirst_ablation.cc.o"
  "CMakeFiles/bench_bestfirst_ablation.dir/bench_bestfirst_ablation.cc.o.d"
  "bench_bestfirst_ablation"
  "bench_bestfirst_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bestfirst_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
