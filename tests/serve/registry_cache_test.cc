// Dataset registry (load-once semantics, content hashing, idempotent
// re-registration) and LRU result cache (eviction order, hit/miss/eviction
// counters, concurrent access).
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/dataset_registry.h"
#include "serve/result_cache.h"
#include "serve_test_util.h"

namespace sliceline::serve {
namespace {

RegisterDatasetRequest MakeRequest(const std::string& name,
                                   const std::string& csv_path) {
  RegisterDatasetRequest request;
  request.name = name;
  request.csv_path = csv_path;
  request.label = "target";
  request.task = "reg";
  return request;
}

class ServeRegistryTest : public ::testing::Test {
 protected:
  std::string WriteCsv(const std::string& file, const std::string& text) {
    // Pid-qualified so overlapping test processes never share a fixture.
    const std::string path =
        ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + file;
    WriteFileOrDie(path, text);
    return path;
  }
};

TEST_F(ServeRegistryTest, RegisterLoadsTrainsAndHashes) {
  DatasetRegistry registry;
  const std::string path =
      WriteCsv("registry_basic.csv", MakeCsvText(300, 4, 3, 17));
  auto outcome = registry.Register(MakeRequest("basic", path));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->already_registered);
  const std::shared_ptr<const RegisteredDataset>& dataset = outcome->dataset;
  EXPECT_EQ(dataset->name, "basic");
  EXPECT_EQ(dataset->dataset.n(), 300);
  EXPECT_EQ(dataset->dataset.m(), 4);
  EXPECT_NE(dataset->data_hash, 0u);
  EXPECT_GE(dataset->mean_error, 0.0);
  EXPECT_EQ(dataset->dataset.errors.size(), 300u);
  // The stored hash is the recomputable content fingerprint.
  EXPECT_EQ(dataset->data_hash, HashEncodedDataset(dataset->dataset));

  EXPECT_EQ(registry.Find("basic"), dataset);
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_EQ(registry.size(), 1);
  ASSERT_EQ(registry.List().size(), 1u);
  EXPECT_EQ(registry.List()[0]->name, "basic");
}

TEST_F(ServeRegistryTest, ReRegisteringIdenticalContentIsIdempotent) {
  DatasetRegistry registry;
  const std::string path =
      WriteCsv("registry_idem.csv", MakeCsvText(200, 3, 3, 23));
  auto first = registry.Register(MakeRequest("idem", path));
  ASSERT_TRUE(first.ok());
  auto second = registry.Register(MakeRequest("idem", path));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->already_registered);
  // The original instance is kept so concurrent requests share one dataset.
  EXPECT_EQ(second->dataset.get(), first->dataset.get());
  EXPECT_EQ(registry.size(), 1);
}

TEST_F(ServeRegistryTest, ConflictingContentUnderSameNameIsRejected) {
  DatasetRegistry registry;
  const std::string path_a =
      WriteCsv("registry_conflict_a.csv", MakeCsvText(200, 3, 3, 29));
  const std::string path_b =
      WriteCsv("registry_conflict_b.csv", MakeCsvText(200, 3, 3, 31));
  ASSERT_TRUE(registry.Register(MakeRequest("conflict", path_a)).ok());
  auto outcome = registry.Register(MakeRequest("conflict", path_b));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.status().message().find("different content"),
            std::string::npos);
  EXPECT_EQ(registry.size(), 1);
}

TEST_F(ServeRegistryTest, RegisterValidatesRequest) {
  DatasetRegistry registry;
  const std::string path =
      WriteCsv("registry_valid.csv", MakeCsvText(100, 3, 3, 37));

  auto no_name = registry.Register(MakeRequest("", path));
  ASSERT_FALSE(no_name.ok());
  EXPECT_EQ(no_name.status().code(), StatusCode::kInvalidArgument);

  RegisterDatasetRequest bad_task = MakeRequest("t", path);
  bad_task.task = "cluster";
  ASSERT_FALSE(registry.Register(bad_task).ok());

  RegisterDatasetRequest bad_bins = MakeRequest("b", path);
  bad_bins.bins = 1;
  ASSERT_FALSE(registry.Register(bad_bins).ok());

  auto missing_file =
      registry.Register(MakeRequest("m", ::testing::TempDir() + "/absent.csv"));
  ASSERT_FALSE(missing_file.ok());
  EXPECT_EQ(registry.size(), 0);
}

TEST_F(ServeRegistryTest, HashDistinguishesContentAndIsErrorSensitive) {
  auto a = BuildRegisteredDataset("a", MakeCsvText(150, 3, 3, 41));
  auto b = BuildRegisteredDataset("b", MakeCsvText(150, 3, 3, 43));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value()->data_hash, b.value()->data_hash);

  // Same codes but one perturbed error -> different fingerprint: results
  // depend on the error vector, so the cache key must too.
  auto c = BuildRegisteredDataset("c", MakeCsvText(150, 3, 3, 41));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value()->data_hash, c.value()->data_hash);
  data::EncodedDataset perturbed = c.value()->dataset;
  perturbed.errors[0] += 1.0;
  EXPECT_NE(HashEncodedDataset(perturbed), a.value()->data_hash);
}

std::shared_ptr<const CachedResult> MakeEntry(int64_t marker) {
  auto entry = std::make_shared<CachedResult>();
  entry->result.total_evaluated = marker;
  return entry;
}

TEST(ServeCacheTest, MissThenHitCountsBoth) {
  ResultCache cache(4);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  cache.Insert(1, 1, MakeEntry(7));
  auto hit = cache.Lookup(1, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.total_evaluated, 7);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  // Both key halves participate.
  EXPECT_EQ(cache.Lookup(1, 2), nullptr);
  EXPECT_EQ(cache.Lookup(2, 1), nullptr);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert(1, 0, MakeEntry(1));
  cache.Insert(2, 0, MakeEntry(2));
  // Touch 1 so 2 becomes the LRU entry.
  ASSERT_NE(cache.Lookup(1, 0), nullptr);
  cache.Insert(3, 0, MakeEntry(3));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(3, 0), nullptr);
}

TEST(ServeCacheTest, InsertRefreshesExistingEntry) {
  ResultCache cache(2);
  cache.Insert(1, 1, MakeEntry(1));
  cache.Insert(1, 1, MakeEntry(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0);
  auto entry = cache.Lookup(1, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->result.total_evaluated, 2);
}

TEST(ServeCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert(1, 1, MakeEntry(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.misses(), 1);
}

// TSan target: lookups, inserts, and evictions from many threads on a tiny
// key space must stay data-race-free and keep the counters coherent.
TEST(ServeCacheTest, ConcurrentMixedTrafficKeepsCountersCoherent) {
  ResultCache cache(4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>((t + i) % 8);
        if (i % 3 == 0) {
          cache.Insert(key, key, MakeEntry(i));
        } else {
          auto entry = cache.Lookup(key, key);
          if (entry != nullptr) {
            // Entries are immutable shared state; reading must be safe.
            EXPECT_GE(entry->result.total_evaluated, 0);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const int64_t lookups = kThreads * (kOpsPerThread - kOpsPerThread / 3 - 1);
  EXPECT_EQ(cache.hits() + cache.misses(), lookups);
  EXPECT_LE(cache.size(), 4u);
}

}  // namespace
}  // namespace sliceline::serve
