# Empty dependencies file for bench_fig6_blocksize.
# This may be replaced when dependencies are built.
