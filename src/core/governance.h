#ifndef SLICELINE_CORE_GOVERNANCE_H_
#define SLICELINE_CORE_GOVERNANCE_H_

#include <cstdint>

#include "common/run_context.h"
#include "core/slice.h"

namespace sliceline::core {

/// Per-run driver of the governance policy shared by the enumeration
/// engines. Wraps the (optional) RunContext from SliceLineConfig and owns
/// the degradation ladder that is climbed on soft memory pressure:
///
///   step 1    raise the effective sigma (x2) used for pruning -- fewer
///             candidates survive size filtering at every later level;
///   step 2    cap the number of candidates evaluated per level, keeping
///             the best by upper-bound score;
///   step 3    cap the maximum enumeration level just above the current one;
///   step 4+   keep doubling the effective sigma.
///
/// The effective sigma tightens only *pruning*; top-K admission keeps the
/// run's original sigma so reported slices stay comparable to an ungoverned
/// run. Hard limits (deadline, cancellation, hard memory cap) are polled via
/// CheckBoundary(); a non-kNone answer means "package best-so-far results
/// now". All methods are no-ops when the config carries no RunContext.
class GovernanceController {
 public:
  GovernanceController(const SliceLineConfig& config, int64_t base_sigma,
                       int base_max_level);

  /// Polls cancellation / deadline / hard memory limit.
  StopReason CheckBoundary() const;

  const RunContext* run_context() const { return ctx_; }

  /// Climbs one ladder step if the budget is over its soft limit; call at
  /// level boundaries. Returns true when a step was taken.
  bool MaybeDegrade(int current_level);

  /// Sigma to use for candidate *pruning* (>= the base sigma).
  int64_t effective_sigma() const { return effective_sigma_; }
  /// Per-level candidate cap; 0 = uncapped.
  int64_t candidate_cap() const { return candidate_cap_; }
  int effective_max_level() const { return effective_max_level_; }

  /// Records `dropped` candidates removed by the degradation cap.
  void RecordCapped(int64_t dropped) { candidates_capped_ += dropped; }

  /// Re-installs degradation state carried in a checkpoint.
  void RestoreDegradation(int steps, int64_t effective_sigma,
                          int64_t candidates_capped);

  int degradation_steps() const { return degradation_steps_; }
  int64_t candidates_capped() const { return candidates_capped_; }

  /// Builds the run's outcome record. `stopped_at_level` is the level the
  /// run was inside (or about to start) when `reason` fired; ignored for
  /// kNone.
  RunOutcome Finish(StopReason reason, int stopped_at_level,
                    bool resumed_from_checkpoint) const;

 private:
  RunContext* ctx_;
  int k_;
  int64_t base_sigma_;
  int64_t effective_sigma_;
  int base_max_level_;
  int effective_max_level_;
  int64_t candidate_cap_ = 0;
  int degradation_steps_ = 0;
  int64_t candidates_capped_ = 0;
};

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_GOVERNANCE_H_
