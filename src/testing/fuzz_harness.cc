#include "testing/fuzz_harness.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "testing/shrink.h"

namespace sliceline::testing {
namespace {

bool CheckSelected(const FuzzOptions& options, const std::string& name) {
  if (options.checks.empty()) return true;
  return std::find(options.checks.begin(), options.checks.end(), name) !=
         options.checks.end();
}

/// Dispatches a dataset-driven check by name (the kernel check is seed-
/// driven and handled separately).
std::string RunDatasetCheck(const std::string& check, const FuzzCase& fuzz_case,
                            InjectedBug inject) {
  if (check == "oracle") return CheckOracleDifferential(fuzz_case, inject);
  if (check == "metamorphic") return CheckMetamorphic(fuzz_case);
  if (check == "determinism") return CheckDeterminism(fuzz_case);
  if (check == "governance") return CheckGovernance(fuzz_case);
  if (check == "kernels-simd") return CheckSimdDifferential(fuzz_case);
  if (check == "stream-equivalence") return CheckStreamEquivalence(fuzz_case);
  return "unknown check: " + check;
}

void RecordFailure(const FuzzOptions& options, const std::string& check,
                   uint64_t case_index, std::string failure, FuzzCase fuzz_case,
                   int kernel_rounds, FuzzReport* report) {
  FuzzFailure entry;
  entry.check = check;
  entry.case_index = case_index;

  if (options.shrink && check != "kernel") {
    ShrinkResult shrunk =
        Shrink(fuzz_case, failure, [&](const FuzzCase& candidate) {
          return RunDatasetCheck(check, candidate, options.inject);
        });
    if (options.verbose) {
      std::fprintf(stderr,
                   "[fuzz] shrunk case %llu: %lldx%lld -> %lldx%lld rows/cols "
                   "in %d steps (%d attempts)\n",
                   static_cast<unsigned long long>(case_index),
                   static_cast<long long>(fuzz_case.x0.rows()),
                   static_cast<long long>(fuzz_case.x0.cols()),
                   static_cast<long long>(shrunk.fuzz_case.x0.rows()),
                   static_cast<long long>(shrunk.fuzz_case.x0.cols()),
                   shrunk.steps, shrunk.attempts);
    }
    entry.shrink_steps = shrunk.steps;
    fuzz_case = std::move(shrunk.fuzz_case);
    failure = std::move(shrunk.failure);
  }
  entry.failure = std::move(failure);
  entry.fuzz_case = std::move(fuzz_case);

  if (!options.replay_dir.empty()) {
    ReplayRecord record;
    record.check = check;
    record.failure = entry.failure;
    record.case_index = case_index;
    record.kernel_rounds = check == "kernel" ? kernel_rounds : 0;
    record.fuzz_case = entry.fuzz_case;
    const std::string path = options.replay_dir + "/replay_" + check + "_case" +
                             std::to_string(case_index) + ".json";
    Status status = WriteReplayFile(path, record);
    if (status.ok()) {
      entry.replay_path = path;
    } else {
      LOG_WARNING << "failed to write replay file " << path << ": "
                  << status.ToString();
    }
  }
  report->failures.push_back(std::move(entry));
}

}  // namespace

FuzzReport RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  RandomDatasetGenerator generator(options.seed, options.dataset);
  const int profiles = RandomDatasetGenerator::num_profiles();

  for (int i = 0; i < options.cases; ++i) {
    if (static_cast<int>(report.failures.size()) >= options.max_failures) {
      break;
    }
    // Deterministic profile cycling: a batch of >= num_profiles cases covers
    // every pathological generator shape.
    const FuzzCase fuzz_case = generator.NextWithProfile(i % profiles);
    ++report.cases_run;
    if (options.verbose) {
      std::fprintf(stderr, "[fuzz] case %d: profile=%s n=%lld m=%lld\n", i,
                   fuzz_case.profile.c_str(),
                   static_cast<long long>(fuzz_case.x0.rows()),
                   static_cast<long long>(fuzz_case.x0.cols()));
    }

    for (const char* check : {"oracle", "metamorphic", "governance",
                              "kernels-simd", "stream-equivalence"}) {
      if (!CheckSelected(options, check)) continue;
      ++report.checks_run;
      std::string failure = RunDatasetCheck(check, fuzz_case, options.inject);
      if (!failure.empty()) {
        RecordFailure(options, check, static_cast<uint64_t>(i),
                      std::move(failure), fuzz_case, 0, &report);
        break;
      }
    }
    if (static_cast<int>(report.failures.size()) >= options.max_failures) {
      break;
    }

    if (CheckSelected(options, "determinism") &&
        i % std::max(1, options.determinism_stride) == 0) {
      ++report.checks_run;
      std::string failure = CheckDeterminism(fuzz_case);
      if (!failure.empty()) {
        RecordFailure(options, "determinism", static_cast<uint64_t>(i),
                      std::move(failure), fuzz_case, 0, &report);
        continue;
      }
    }

    if (CheckSelected(options, "kernel")) {
      ++report.checks_run;
      // Kernel draws are seeded from the case seed, so a kernel failure is
      // regenerable from the replay record's seed alone.
      std::string failure = CheckKernelDifferential(
          fuzz_case.seed, options.kernel_rounds, options.inject);
      if (!failure.empty()) {
        RecordFailure(options, "kernel", static_cast<uint64_t>(i),
                      std::move(failure), fuzz_case, options.kernel_rounds,
                      &report);
        continue;
      }
    }
  }
  return report;
}

std::string RunReplay(const ReplayRecord& record, InjectedBug inject) {
  if (record.check == "kernel") {
    return CheckKernelDifferential(record.fuzz_case.seed,
                                   std::max(1, record.kernel_rounds), inject);
  }
  return RunDatasetCheck(record.check, record.fuzz_case, inject);
}

}  // namespace sliceline::testing
