#include <algorithm>
#include <numeric>

#include "common/checked_math.h"
#include "common/logging.h"
#include "linalg/kernels.h"
#include "obs/kernel_scope.h"

namespace sliceline::linalg {

CsrMatrix Table(const std::vector<int64_t>& rix,
                const std::vector<int64_t>& cix, int64_t rows, int64_t cols) {
  return Table(rix, cix, std::vector<double>(rix.size(), 1.0), rows, cols);
}

CsrMatrix Table(const std::vector<int64_t>& rix,
                const std::vector<int64_t>& cix,
                const std::vector<double>& weights, int64_t rows,
                int64_t cols) {
  SLICELINE_KERNEL_SCOPE("Table");
  SLICELINE_CHECK_EQ(rix.size(), cix.size());
  SLICELINE_CHECK_EQ(rix.size(), weights.size());
  // Byte-overflow check only: duplicate (r, c) triplets are summed by the
  // builder, so the triplet count may legitimately exceed rows * cols.
  int64_t triplet_bytes;
  SLICELINE_CHECK(CheckedMulInt64(
      static_cast<int64_t>(rix.size()),
      static_cast<int64_t>(2 * sizeof(int64_t) + sizeof(double)),
      &triplet_bytes))
      << "COO triplet reservation overflows: " << rix.size();
  CooBuilder builder(rows, cols);
  for (size_t k = 0; k < rix.size(); ++k) {
    builder.Add(rix[k], cix[k], weights[k]);
  }
  return builder.Build();
}

std::vector<double> CumSum(const std::vector<double>& v) {
  std::vector<double> out(v.size());
  double acc = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    acc += v[i];
    out[i] = acc;
  }
  return out;
}

std::vector<double> CumProd(const std::vector<double>& v) {
  std::vector<double> out(v.size());
  double acc = 1.0;
  for (size_t i = 0; i < v.size(); ++i) {
    acc *= v[i];
    out[i] = acc;
  }
  return out;
}

std::vector<int64_t> OrderDesc(const std::vector<double>& v) {
  std::vector<int64_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&v](int64_t a, int64_t b) { return v[a] > v[b]; });
  return idx;
}

}  // namespace sliceline::linalg
