// Incremental & streaming slice finding: SegmentStore append/compaction
// bit-determinism, StreamingSliceFinder incremental-vs-from-scratch
// equivalence (including the full-rerun fallback and the per-candidate
// decision counters), and SliceWatcher sliding windows with exactly-once
// tau-crossing alerts under a simulated clock. Suites are named Stream* so
// the TSan preset's filter picks them up.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/run_context.h"
#include "core/evaluator.h"
#include "core/sliceline.h"
#include "data/int_matrix.h"
#include "stream/segment.h"
#include "stream/stream_finder.h"
#include "stream/watcher.h"

namespace sliceline::stream {
namespace {

bool BitEqual(double a, double b) {
  uint64_t ab = 0;
  uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

struct StreamData {
  data::IntMatrix x0;
  std::vector<double> errors;
};

/// Deterministic codes in 1..domain over `features` columns; rows in the
/// (c0=1, c1=1) cell carry much larger errors, so slice finding has a
/// planted signal.
StreamData MakeData(int64_t rows, int64_t features, int32_t domain,
                    uint64_t seed) {
  Rng rng(seed);
  StreamData data{data::IntMatrix(rows, features), std::vector<double>(rows)};
  for (int64_t r = 0; r < rows; ++r) {
    int32_t* row = data.x0.row(r);
    for (int64_t j = 0; j < features; ++j) {
      row[j] = 1 + static_cast<int32_t>(rng.NextUint64(domain));
    }
    const double noise = std::abs(rng.NextGaussian());
    data.errors[static_cast<size_t>(r)] =
        row[0] == 1 && row[1] == 1 ? 4.0 + noise : 0.3 * noise;
  }
  return data;
}

data::IntMatrix RowSlice(const data::IntMatrix& x0, int64_t begin,
                         int64_t end) {
  data::IntMatrix out(end - begin, x0.cols());
  for (int64_t r = begin; r < end; ++r) {
    const int32_t* src = x0.row(r);
    std::copy(src, src + x0.cols(), out.row(r - begin));
  }
  return out;
}

std::vector<double> ErrorSlice(const std::vector<double>& errors,
                               int64_t begin, int64_t end) {
  return std::vector<double>(errors.begin() + static_cast<size_t>(begin),
                             errors.begin() + static_cast<size_t>(end));
}

core::SliceLineConfig TestConfig() {
  core::SliceLineConfig config;
  config.k = 4;
  config.alpha = 0.95;
  config.max_level = 3;
  return config;
}

/// From-scratch reference over the row prefix, with the same frozen
/// offsets the streaming finder uses.
core::SliceLineResult ReferenceRun(const StreamData& data,
                                   const std::vector<int32_t>& domains,
                                   int64_t prefix,
                                   const core::SliceLineConfig& config) {
  const data::IntMatrix x0 = RowSlice(data.x0, 0, prefix);
  const std::vector<double> errors = ErrorSlice(data.errors, 0, prefix);
  const data::FeatureOffsets offsets = OffsetsFromDomains(domains);
  const core::SliceEvaluator evaluator(x0, offsets, errors);
  auto result = core::RunSliceLineWithBackend(evaluator, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectBitIdentical(const core::SliceLineResult& want,
                        const core::SliceLineResult& got) {
  ASSERT_EQ(want.top_k.size(), got.top_k.size());
  for (size_t i = 0; i < want.top_k.size(); ++i) {
    EXPECT_EQ(want.top_k[i].predicates, got.top_k[i].predicates) << i;
    EXPECT_EQ(want.top_k[i].stats.size, got.top_k[i].stats.size) << i;
    EXPECT_TRUE(
        BitEqual(want.top_k[i].stats.score, got.top_k[i].stats.score))
        << i << ": " << want.top_k[i].stats.score << " vs "
        << got.top_k[i].stats.score;
    EXPECT_TRUE(BitEqual(want.top_k[i].stats.error_sum,
                         got.top_k[i].stats.error_sum))
        << i;
    EXPECT_TRUE(BitEqual(want.top_k[i].stats.max_error,
                         got.top_k[i].stats.max_error))
        << i;
  }
  EXPECT_EQ(want.total_evaluated, got.total_evaluated);
  EXPECT_EQ(want.levels.size(), got.levels.size());
}

TEST(StreamSegmentTest, AppendsMatchOneShotBuildBitIdentically) {
  const StreamData data = MakeData(240, 4, 3, 101);
  const std::vector<int32_t> domains = data.x0.ColMaxs();

  auto one_shot = SegmentStore::Create(data.x0, data.errors, domains);
  ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();

  auto chained = SegmentStore::Create(RowSlice(data.x0, 0, 100),
                                      ErrorSlice(data.errors, 0, 100),
                                      domains);
  ASSERT_TRUE(chained.ok()) << chained.status().ToString();
  SegmentStore& store = chained.value();
  ASSERT_TRUE(store
                  .Append(RowSlice(data.x0, 100, 180),
                          ErrorSlice(data.errors, 100, 180))
                  .ok());
  ASSERT_TRUE(store
                  .Append(RowSlice(data.x0, 180, 240),
                          ErrorSlice(data.errors, 180, 240))
                  .ok());

  const SegmentStore& ref = one_shot.value();
  ASSERT_EQ(store.n(), ref.n());
  EXPECT_TRUE(BitEqual(store.total_error(), ref.total_error()));
  ASSERT_EQ(store.basic_sizes(), ref.basic_sizes());
  ASSERT_EQ(store.basic_error_sums().size(), ref.basic_error_sums().size());
  for (size_t c = 0; c < store.basic_error_sums().size(); ++c) {
    EXPECT_TRUE(
        BitEqual(store.basic_error_sums()[c], ref.basic_error_sums()[c]))
        << c;
    EXPECT_TRUE(
        BitEqual(store.basic_max_errors()[c], ref.basic_max_errors()[c]))
        << c;
  }
  // Column bitmaps share the global word layout, so the append-built words
  // equal the one-shot words exactly.
  ASSERT_EQ(store.words(), ref.words());
  for (int64_t c = 0; c < store.offsets().total; ++c) {
    EXPECT_EQ(std::memcmp(store.column_words(c), ref.column_words(c),
                          static_cast<size_t>(store.words()) *
                              sizeof(uint64_t)),
              0)
        << c;
  }

  // The fingerprint chains per append: fp_k = Chain(fp_{k-1}, delta_k).
  uint64_t expected = BaseFingerprint(RowSlice(data.x0, 0, 100),
                                      ErrorSlice(data.errors, 0, 100));
  expected = ChainFingerprint(expected, RowSlice(data.x0, 100, 180),
                              ErrorSlice(data.errors, 100, 180));
  expected = ChainFingerprint(expected, RowSlice(data.x0, 180, 240),
                              ErrorSlice(data.errors, 180, 240));
  EXPECT_EQ(store.fingerprint(), expected);
  // A different split of the same rows yields a different chain.
  EXPECT_NE(store.fingerprint(), ref.fingerprint());

  // Segment boundaries are live until compaction; the counts at a boundary
  // are the cumulative per-column counts over the prefix.
  ASSERT_EQ(store.segments().size(), 2u);
  ASSERT_NE(store.BoundaryCounts(0), nullptr);
  const std::vector<int64_t>* at_100 = store.BoundaryCounts(100);
  ASSERT_NE(at_100, nullptr);
  auto prefix_store = SegmentStore::Create(RowSlice(data.x0, 0, 100),
                                           ErrorSlice(data.errors, 0, 100),
                                           domains);
  ASSERT_TRUE(prefix_store.ok());
  EXPECT_EQ(*at_100, prefix_store.value().basic_sizes());
}

TEST(StreamSegmentTest, CompactionIsPureMetadata) {
  const StreamData data = MakeData(160, 4, 3, 102);
  const std::vector<int32_t> domains = data.x0.ColMaxs();
  auto created = SegmentStore::Create(RowSlice(data.x0, 0, 100),
                                      ErrorSlice(data.errors, 0, 100),
                                      domains);
  ASSERT_TRUE(created.ok());
  SegmentStore& store = created.value();
  ASSERT_TRUE(store
                  .Append(RowSlice(data.x0, 100, 160),
                          ErrorSlice(data.errors, 100, 160))
                  .ok());

  // Below the ratio: no compaction.
  EXPECT_FALSE(store.MaybeCompact(10.0));
  EXPECT_EQ(store.compactions(), 0);
  ASSERT_EQ(store.segments().size(), 1u);

  const uint64_t fingerprint = store.fingerprint();
  const std::vector<double> sums = store.basic_error_sums();
  const double total = store.total_error();

  // 60 delta rows > 0.1 * 100 base rows: compaction folds the segment.
  EXPECT_TRUE(store.MaybeCompact(0.1));
  EXPECT_EQ(store.compactions(), 1);
  EXPECT_TRUE(store.segments().empty());
  EXPECT_EQ(store.base_rows(), 160);
  EXPECT_EQ(store.BoundaryCounts(100), nullptr);

  // Pure metadata: no float chain was reordered, no fingerprint advanced.
  EXPECT_EQ(store.fingerprint(), fingerprint);
  EXPECT_TRUE(BitEqual(store.total_error(), total));
  for (size_t c = 0; c < sums.size(); ++c) {
    EXPECT_TRUE(BitEqual(store.basic_error_sums()[c], sums[c])) << c;
  }
}

TEST(StreamSegmentTest, RejectsMalformedAppendsLeavingStoreUnchanged) {
  const StreamData data = MakeData(80, 4, 3, 103);
  auto created =
      SegmentStore::Create(data.x0, data.errors, data.x0.ColMaxs());
  ASSERT_TRUE(created.ok());
  SegmentStore& store = created.value();
  const uint64_t fingerprint = store.fingerprint();

  // Column-count mismatch.
  EXPECT_FALSE(store.Append(data::IntMatrix(1, 3), {1.0}).ok());
  // Code outside the frozen domain (and the 1-based floor).
  data::IntMatrix high(1, 4);
  for (int j = 0; j < 4; ++j) high.row(0)[j] = 1;
  high.row(0)[2] = 4;
  EXPECT_FALSE(store.Append(high, {1.0}).ok());
  data::IntMatrix zero(1, 4);
  for (int j = 0; j < 4; ++j) zero.row(0)[j] = 1;
  zero.row(0)[0] = 0;
  EXPECT_FALSE(store.Append(zero, {1.0}).ok());
  // Error vector shape and value violations.
  data::IntMatrix good(1, 4);
  for (int j = 0; j < 4; ++j) good.row(0)[j] = 1;
  EXPECT_FALSE(store.Append(good, {}).ok());
  EXPECT_FALSE(store.Append(good, {-1.0}).ok());
  EXPECT_FALSE(store.Append(good, {std::nan("")}).ok());

  EXPECT_EQ(store.n(), 80);
  EXPECT_EQ(store.fingerprint(), fingerprint);
  EXPECT_TRUE(store.segments().empty());
}

TEST(StreamFinderTest, IncrementalFindBitIdenticalToFromScratch) {
  const StreamData data = MakeData(260, 4, 3, 104);
  const core::SliceLineConfig config = TestConfig();
  StreamOptions options;
  options.domains = data.x0.ColMaxs();
  options.full_rerun_fraction = 0.0;  // force the incremental path

  auto created = StreamingSliceFinder::Create(
      RowSlice(data.x0, 0, 150), ErrorSlice(data.errors, 0, 150), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  StreamingSliceFinder& finder = *created.value();

  // First find computes every candidate from scratch and seeds the cache.
  auto first = finder.Find(config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ExpectBitIdentical(ReferenceRun(data, options.domains, 150, config),
                     first.value());
  EXPECT_GT(finder.last_find_stats().candidates_full, 0);
  EXPECT_FALSE(first.value().outcome.stream_full_fallback);

  // Append, then find: cached statistic chains are continued over just the
  // delta, and the result stays bit-identical to a from-scratch run.
  ASSERT_TRUE(finder
                  .Append(RowSlice(data.x0, 150, 260),
                          ErrorSlice(data.errors, 150, 260))
                  .ok());
  auto second = finder.Find(config);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectBitIdentical(ReferenceRun(data, options.domains, 260, config),
                     second.value());
  const StreamFindStats stats = finder.last_find_stats();
  EXPECT_GT(stats.candidates_delta + stats.candidates_cached, 0);
  EXPECT_EQ(second.value().outcome.stream_candidates_delta,
            stats.candidates_delta);
  EXPECT_EQ(second.value().outcome.stream_candidates_cached,
            stats.candidates_cached);

  // A repeat find with no intervening append answers from the cache alone.
  auto repeat = finder.Find(config);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(finder.last_find_stats().candidates_delta, 0);
  EXPECT_EQ(finder.last_find_stats().candidates_full, 0);
  ExpectBitIdentical(second.value(), repeat.value());
}

TEST(StreamFinderTest, FullRerunFallbackRecordsOutcomeAndMatches) {
  const StreamData data = MakeData(200, 4, 3, 105);
  const core::SliceLineConfig config = TestConfig();
  StreamOptions options;
  options.domains = data.x0.ColMaxs();
  options.full_rerun_fraction = 1e-9;  // any delta trips the fallback

  auto created = StreamingSliceFinder::Create(
      RowSlice(data.x0, 0, 100), ErrorSlice(data.errors, 0, 100), options);
  ASSERT_TRUE(created.ok());
  StreamingSliceFinder& finder = *created.value();
  ASSERT_TRUE(finder.Find(config).ok());
  ASSERT_TRUE(finder
                  .Append(RowSlice(data.x0, 100, 200),
                          ErrorSlice(data.errors, 100, 200))
                  .ok());

  auto result = finder.Find(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().outcome.stream_full_fallback);
  EXPECT_TRUE(finder.last_find_stats().full_fallback);
  ExpectBitIdentical(ReferenceRun(data, options.domains, 200, config),
                     result.value());
}

TEST(StreamFinderTest, FrozenDomainsRejectUnseenCodes) {
  const StreamData data = MakeData(60, 4, 3, 106);
  StreamOptions options;
  options.domains = {3, 3, 3, 3};
  auto created =
      StreamingSliceFinder::Create(data.x0, data.errors, options);
  ASSERT_TRUE(created.ok());
  StreamingSliceFinder& finder = *created.value();

  data::IntMatrix unseen(1, 4);
  for (int j = 0; j < 4; ++j) unseen.row(0)[j] = 1;
  unseen.row(0)[3] = 4;
  EXPECT_FALSE(finder.Append(unseen, {1.0}).ok());
  EXPECT_EQ(finder.n(), 60);
}

/// Benign rows: codes over the full domain, every error exactly 1.0, so no
/// slice scores above zero.
StreamData MakeBenign(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  StreamData data{data::IntMatrix(rows, 4), std::vector<double>(rows, 1.0)};
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < 4; ++j) {
      data.x0.row(r)[j] = 1 + static_cast<int32_t>(rng.NextUint64(3));
    }
  }
  return data;
}

/// Rows concentrated in the (c0=1, c1=1) cell with large errors: the
/// regression the watcher is supposed to flag.
StreamData MakeRegression(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  StreamData data{data::IntMatrix(rows, 4), std::vector<double>(rows, 50.0)};
  for (int64_t r = 0; r < rows; ++r) {
    data.x0.row(r)[0] = 1;
    data.x0.row(r)[1] = 1;
    data.x0.row(r)[2] = 1 + static_cast<int32_t>(rng.NextUint64(3));
    data.x0.row(r)[3] = 1 + static_cast<int32_t>(rng.NextUint64(3));
  }
  return data;
}

WatchOptions BenignWatchOptions() {
  WatchOptions options;
  options.tau = 1.0;
  options.hysteresis = 0.4;
  options.config = TestConfig();
  // Small windows must still resolve small regressed subgroups; the default
  // sigma (max(32, n/100)) would hide them.
  options.config.min_support = 4;
  options.stream.domains = {3, 3, 3, 3};
  return options;
}

TEST(StreamWatcherTest, FiresExactlyOncePerUpwardCrossing) {
  const StreamData base = MakeBenign(120, 107);
  WatchOptions options = BenignWatchOptions();
  options.window_rows = 200;
  SimulatedClock clock(10.0);

  auto created = SliceWatcher::Create("prod", base.x0, base.errors,
                                      {"c0", "c1", "c2", "c3"}, options,
                                      &clock);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  SliceWatcher& watcher = *created.value();
  EXPECT_TRUE(watcher.armed());

  // Benign appends never fire.
  const StreamData benign = MakeBenign(20, 108);
  auto quiet = watcher.OnAppend(benign.x0, benign.errors);
  ASSERT_TRUE(quiet.ok()) << quiet.status().ToString();
  EXPECT_FALSE(quiet.value().has_value());
  EXPECT_LT(watcher.last_score(), options.tau);

  // The regression batch crosses tau: exactly one alert, then disarmed.
  const StreamData bad = MakeRegression(40, 109);
  clock.Advance(5.0);
  auto fired = watcher.OnAppend(bad.x0, bad.errors);
  ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  ASSERT_TRUE(fired.value().has_value());
  const StreamAlert& alert = *fired.value();
  EXPECT_EQ(alert.dataset, "prod");
  EXPECT_GE(alert.score, options.tau);
  EXPECT_EQ(alert.at_rows, 180);
  EXPECT_EQ(alert.at_seconds, 15.0);
  EXPECT_EQ(alert.fingerprint, watcher.finder().fingerprint());
  EXPECT_NE(alert.slice_display.find("c0"), std::string::npos)
      << alert.slice_display;
  EXPECT_FALSE(watcher.armed());
  EXPECT_EQ(watcher.alerts_fired(), 1);

  // Still above tau: no re-fire while disarmed.
  const StreamData more_bad = MakeRegression(20, 110);
  auto silent = watcher.OnAppend(more_bad.x0, more_bad.errors);
  ASSERT_TRUE(silent.ok());
  EXPECT_FALSE(silent.value().has_value());
  EXPECT_EQ(watcher.alerts_fired(), 1);

  // A benign flood pushes the regression rows out of the row window; the
  // score falls below tau - hysteresis and the watcher re-arms.
  const StreamData flood = MakeBenign(210, 111);
  auto rearm = watcher.OnAppend(flood.x0, flood.errors);
  ASSERT_TRUE(rearm.ok()) << rearm.status().ToString();
  EXPECT_FALSE(rearm.value().has_value());
  EXPECT_GE(watcher.window_rebuilds(), 1);
  EXPECT_LE(watcher.window_rows(), 2 * options.window_rows);
  EXPECT_LT(watcher.last_score(), options.tau - options.hysteresis);
  EXPECT_TRUE(watcher.armed());

  // The next upward crossing fires again -- exactly once per crossing.
  const StreamData again = MakeRegression(40, 112);
  auto second = watcher.OnAppend(again.x0, again.errors);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(watcher.alerts_fired(), 2);
  EXPECT_EQ(watcher.total_rows(), 120 + 20 + 40 + 20 + 210 + 40);
}

TEST(StreamWatcherTest, WallClockWindowEvictsExpiredRows) {
  const StreamData base = MakeBenign(100, 113);
  WatchOptions options = BenignWatchOptions();
  options.window_seconds = 10.0;
  SimulatedClock clock(0.0);

  auto created = SliceWatcher::Create("clocked", base.x0, base.errors,
                                      {"c0", "c1", "c2", "c3"}, options,
                                      &clock);
  ASSERT_TRUE(created.ok());
  SliceWatcher& watcher = *created.value();

  // Within the window: nothing expires.
  const StreamData fresh = MakeBenign(30, 114);
  clock.Advance(5.0);
  ASSERT_TRUE(watcher.OnAppend(fresh.x0, fresh.errors).ok());
  EXPECT_EQ(watcher.window_rows(), 130);
  EXPECT_EQ(watcher.window_rebuilds(), 0);

  // 100 seconds later every old row is expired; the append triggers the
  // batched eviction and only the new rows remain.
  const StreamData late = MakeBenign(25, 115);
  clock.Advance(100.0);
  ASSERT_TRUE(watcher.OnAppend(late.x0, late.errors).ok());
  EXPECT_EQ(watcher.window_rows(), 25);
  EXPECT_EQ(watcher.window_rebuilds(), 1);
  EXPECT_EQ(watcher.total_rows(), 155);

  // Alerts still work on the shrunken window.
  const StreamData bad = MakeRegression(5, 116);
  auto fired = watcher.OnAppend(bad.x0, bad.errors);
  ASSERT_TRUE(fired.ok());
  ASSERT_TRUE(fired.value().has_value());
  EXPECT_EQ(fired.value()->at_seconds, 105.0);
}

TEST(StreamWatcherTest, RejectsInvalidOptions) {
  const StreamData base = MakeBenign(10, 117);
  const std::vector<std::string> names = {"c0", "c1", "c2", "c3"};

  WatchOptions bad_tau = BenignWatchOptions();
  bad_tau.tau = 0.0;
  EXPECT_FALSE(
      SliceWatcher::Create("d", base.x0, base.errors, names, bad_tau).ok());

  WatchOptions bad_hysteresis = BenignWatchOptions();
  bad_hysteresis.hysteresis = 1.0;  // must stay below tau
  EXPECT_FALSE(SliceWatcher::Create("d", base.x0, base.errors, names,
                                    bad_hysteresis)
                   .ok());

  WatchOptions bad_window = BenignWatchOptions();
  bad_window.window_rows = -1;
  EXPECT_FALSE(SliceWatcher::Create("d", base.x0, base.errors, names,
                                    bad_window)
                   .ok());
}

}  // namespace
}  // namespace sliceline::stream
