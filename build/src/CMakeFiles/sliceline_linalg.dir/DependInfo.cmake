
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/csr_matrix.cc" "src/CMakeFiles/sliceline_linalg.dir/linalg/csr_matrix.cc.o" "gcc" "src/CMakeFiles/sliceline_linalg.dir/linalg/csr_matrix.cc.o.d"
  "/root/repo/src/linalg/dense_matrix.cc" "src/CMakeFiles/sliceline_linalg.dir/linalg/dense_matrix.cc.o" "gcc" "src/CMakeFiles/sliceline_linalg.dir/linalg/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/kernels_construct.cc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_construct.cc.o" "gcc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_construct.cc.o.d"
  "/root/repo/src/linalg/kernels_elementwise.cc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_elementwise.cc.o" "gcc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_elementwise.cc.o.d"
  "/root/repo/src/linalg/kernels_reduce.cc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_reduce.cc.o" "gcc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_reduce.cc.o.d"
  "/root/repo/src/linalg/kernels_select.cc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_select.cc.o" "gcc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_select.cc.o.d"
  "/root/repo/src/linalg/kernels_spgemm.cc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_spgemm.cc.o" "gcc" "src/CMakeFiles/sliceline_linalg.dir/linalg/kernels_spgemm.cc.o.d"
  "/root/repo/src/linalg/matrix_io.cc" "src/CMakeFiles/sliceline_linalg.dir/linalg/matrix_io.cc.o" "gcc" "src/CMakeFiles/sliceline_linalg.dir/linalg/matrix_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sliceline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
