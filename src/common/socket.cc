#include "common/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace sliceline {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining milliseconds of a deadline started `start` seconds ago with
/// budget `timeout_ms`; clamped at 0 once expired, -1 stays -1 (infinite).
int RemainingMillis(double start, int timeout_ms) {
  if (timeout_ms < 0) return -1;
  const double elapsed_ms = (MonotonicSeconds() - start) * 1e3;
  const double left = static_cast<double>(timeout_ms) - elapsed_ms;
  return left > 0.0 ? static_cast<int>(left) : 0;
}

/// SIGPIPE on a peer-closed socket must surface as an EPIPE Status, not
/// kill the server; MSG_NOSIGNAL handles it per-send without touching the
/// process signal disposition.
ssize_t SendSome(int fd, const char* data, size_t len) {
  return ::send(fd, data, len, MSG_NOSIGNAL);
}

}  // namespace

SocketConnection::~SocketConnection() { Close(); }

SocketConnection::SocketConnection(SocketConnection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

SocketConnection& SocketConnection::operator=(
    SocketConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void SocketConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<std::string> SocketConnection::ReadLine(size_t max_bytes) {
  if (fd_ < 0) return Status::InvalidArgument("read on closed connection");
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (line.size() > max_bytes) {
        return Status::ResourceExhausted("line exceeds " +
                                         std::to_string(max_bytes) + " bytes");
      }
      return line;
    }
    if (buffer_.size() > max_bytes) {
      return Status::ResourceExhausted("line exceeds " +
                                       std::to_string(max_bytes) + " bytes");
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) {
      if (buffer_.empty()) return Status::NotFound("eof");
      // Tolerate a missing trailing newline on the final line.
      std::string line = std::move(buffer_);
      buffer_.clear();
      if (line.size() > max_bytes) {
        return Status::ResourceExhausted("line exceeds " +
                                         std::to_string(max_bytes) + " bytes");
      }
      return line;
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

StatusOr<std::string> SocketConnection::ReadLine(size_t max_bytes,
                                                 int timeout_ms) {
  if (fd_ < 0) return Status::InvalidArgument("read on closed connection");
  const double start = MonotonicSeconds();
  for (;;) {
    // Serve from the buffer first: a fragmented line completed by an earlier
    // read must not wait on the poll below.
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos || buffer_.size() > max_bytes) {
      return ReadLine(max_bytes);  // completes (or rejects) without blocking
    }
    const int left = RemainingMillis(start, timeout_ms);
    if (left == 0) {
      return Status::DeadlineExceeded("read timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    SLICELINE_ASSIGN_OR_RETURN(const bool readable, WaitReadable(left));
    if (!readable) continue;  // EINTR or spurious wakeup; deadline re-checked
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) {
      if (buffer_.empty()) return Status::NotFound("eof");
      std::string line = std::move(buffer_);
      buffer_.clear();
      if (line.size() > max_bytes) {
        return Status::ResourceExhausted("line exceeds " +
                                         std::to_string(max_bytes) + " bytes");
      }
      return line;
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

StatusOr<std::string> SocketConnection::ReadAll(size_t max_bytes) {
  if (fd_ < 0) return Status::InvalidArgument("read on closed connection");
  std::string out = std::move(buffer_);
  buffer_.clear();
  char chunk[4096];
  while (out.size() < max_bytes) {
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) return out;
    out.append(chunk, static_cast<size_t>(got));
  }
  return Status::ResourceExhausted("response exceeds " +
                                   std::to_string(max_bytes) + " bytes");
}

StatusOr<bool> SocketConnection::WaitReadable(int timeout_ms) {
  if (fd_ < 0) return Status::InvalidArgument("poll on closed connection");
  if (!buffer_.empty()) return true;
  const double start = MonotonicSeconds();
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, RemainingMillis(start, timeout_ms));
    if (ready < 0) {
      // A signal (e.g. a child-reaping SIGCHLD in the chaos harness) must
      // not be reported as a timeout with budget left: re-poll for the
      // remaining time.
      if (errno == EINTR) {
        if (RemainingMillis(start, timeout_ms) == 0) return false;
        continue;
      }
      return Errno("poll");
    }
    return ready > 0;
  }
}

Status SocketConnection::WriteAll(const std::string& data) {
  if (fd_ < 0) return Status::InvalidArgument("write on closed connection");
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = SendSome(fd_, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SocketConnection::WriteLine(const std::string& line, size_t max_bytes) {
  // Mirror ReadLine's accounting: the guard covers the payload, not the
  // terminator, so a line that round-trips reads back under the same limit.
  const bool terminated = !line.empty() && line.back() == '\n';
  const size_t payload = line.size() - (terminated ? 1 : 0);
  if (payload > max_bytes) {
    return Status::ResourceExhausted("line exceeds " +
                                     std::to_string(max_bytes) + " bytes");
  }
  if (!terminated) {
    return Status::InvalidArgument("protocol line missing trailing newline");
  }
  return WriteAll(line);
}

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

StatusOr<ListenSocket> ListenSocket::ListenTcp(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  ListenSocket out;
  out.fd_ = fd;
  out.port_ = ntohs(bound.sin_port);
  return out;
}

StatusOr<ListenSocket> ListenSocket::ListenUnix(const std::string& path,
                                                int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind " + path);
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen " + path);
    ::close(fd);
    return st;
  }
  ListenSocket out;
  out.fd_ = fd;
  out.path_ = path;
  return out;
}

StatusOr<SocketConnection> ListenSocket::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::InvalidArgument("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::NotFound("accept timeout");
    return Errno("poll");
  }
  if (ready == 0) return Status::NotFound("accept timeout");
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR) return Status::NotFound("accept timeout");
    return Errno("accept");
  }
  return SocketConnection(client);
}

namespace {

/// Shared connect tail: blocking connect when `timeout_ms < 0`, otherwise a
/// non-blocking connect polled for writability with the connect result read
/// back via SO_ERROR (the portable deadline-bounded connect idiom). The fd
/// is returned to blocking mode before it is wrapped.
StatusOr<SocketConnection> ConnectWithTimeout(int fd, const sockaddr* addr,
                                              socklen_t addr_len,
                                              const std::string& what,
                                              int timeout_ms) {
  if (timeout_ms < 0) {
    int rc;
    do {
      rc = ::connect(fd, addr, addr_len);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      const Status st = Errno("connect " + what);
      ::close(fd);
      return st;
    }
    return SocketConnection(fd);
  }

  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const Status st = Errno("fcntl " + what);
    ::close(fd);
    return st;
  }
  if (::connect(fd, addr, addr_len) != 0 && errno != EINPROGRESS &&
      errno != EINTR) {
    const Status st = Errno("connect " + what);
    ::close(fd);
    return st;
  }
  const double start = MonotonicSeconds();
  for (;;) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, RemainingMillis(start, timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) {
        if (RemainingMillis(start, timeout_ms) > 0) continue;
      } else {
        const Status st = Errno("poll " + what);
        ::close(fd);
        return st;
      }
    }
    if (ready <= 0) {
      ::close(fd);
      return Status::DeadlineExceeded("connect " + what + " timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    break;
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
    const Status st = Errno("getsockopt " + what);
    ::close(fd);
    return st;
  }
  if (so_error != 0) {
    ::close(fd);
    return Status::IoError("connect " + what + ": " +
                           std::strerror(so_error));
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    const Status st = Errno("fcntl " + what);
    ::close(fd);
    return st;
  }
  return SocketConnection(fd);
}

}  // namespace

StatusOr<SocketConnection> ConnectTcp(int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  return ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr), "127.0.0.1:" + std::to_string(port),
                            timeout_ms);
}

StatusOr<SocketConnection> ConnectUnix(const std::string& path,
                                       int timeout_ms) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr), path, timeout_ms);
}

}  // namespace sliceline
