#include "obs/kernel_scope.h"

#include <string>

namespace sliceline::obs {

KernelMetrics& KernelMetrics::Get(const char* name) {
  // One (deliberately immortal) instance per instrumentation site, cached
  // by the macro in a function-local static; stays reachable forever so
  // LeakSanitizer does not flag it.
  KernelMetrics* metrics = new KernelMetrics();
  const std::string base = std::string("kernel/") + name;
  MetricsRegistry* registry = MetricsRegistry::Default();
  metrics->calls = registry->GetCounter(base + "/calls");
  HistogramOptions options;
  options.base = 1e-6;   // 1 microsecond
  options.growth = 4.0;  // ... up to ~4.3s in 16 buckets
  options.num_buckets = 16;
  metrics->seconds = registry->GetHistogram(base + "/seconds", options);
  metrics->span_name = name;
  return *metrics;
}

}  // namespace sliceline::obs
