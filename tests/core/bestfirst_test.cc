#include "core/sliceline_bestfirst.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exhaustive.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"

namespace sliceline::core {
namespace {

struct RandomInput {
  data::IntMatrix x0;
  std::vector<double> errors;
};

RandomInput MakeRandom(uint64_t seed, int64_t n, int m, int max_dom) {
  Rng rng(seed);
  RandomInput input;
  input.x0 = data::IntMatrix(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.x0.At(i, j) =
          static_cast<int32_t>(rng.NextUint64(1 + rng.NextUint64(max_dom))) +
          1;
    }
  }
  input.errors.resize(n);
  for (auto& e : input.errors) e = rng.NextBool(0.35) ? rng.NextDouble() : 0.0;
  return input;
}

/// The best-first engine must return the same top-K scores as the oracle
/// and the level-wise engine on every input (same exact problem, different
/// expansion order).
class BestFirstExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BestFirstExactnessTest, MatchesOracleAndLevelWise) {
  RandomInput input = MakeRandom(GetParam() + 2500, 300, 6, 4);
  SliceLineConfig config;
  config.k = 6;
  config.alpha = 0.9;
  config.min_support = 12;
  auto best_first = RunSliceLineBestFirst(input.x0, input.errors, config);
  auto level_wise = RunSliceLine(input.x0, input.errors, config);
  auto oracle = RunExhaustive(input.x0, input.errors, config);
  ASSERT_TRUE(best_first.ok());
  ASSERT_TRUE(level_wise.ok());
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(best_first->top_k.size(), oracle->top_k.size());
  for (size_t i = 0; i < oracle->top_k.size(); ++i) {
    EXPECT_NEAR(best_first->top_k[i].stats.score,
                oracle->top_k[i].stats.score, 1e-9)
        << "rank " << i;
    EXPECT_NEAR(best_first->top_k[i].stats.score,
                level_wise->top_k[i].stats.score, 1e-9)
        << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BestFirstExactnessTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(BestFirstTest, RespectsMaxLevel) {
  RandomInput input = MakeRandom(90, 400, 6, 3);
  SliceLineConfig config;
  config.k = 5;
  config.min_support = 8;
  config.max_level = 2;
  auto result = RunSliceLineBestFirst(input.x0, input.errors, config);
  ASSERT_TRUE(result.ok());
  for (const Slice& slice : result->top_k) EXPECT_LE(slice.level(), 2);
}

TEST(BestFirstTest, EarlyExitEvaluatesNoMoreOnConcentratedErrors) {
  // With a single dominant problem slice, the best-first order should not
  // evaluate more slices than the level-wise sweep.
  data::DatasetOptions opts;
  opts.rows = 2000;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceLineConfig config;
  config.k = 2;
  config.alpha = 0.95;
  auto best_first = RunSliceLineBestFirst(ds, config);
  auto level_wise = RunSliceLine(ds, config);
  ASSERT_TRUE(best_first.ok() && level_wise.ok());
  ASSERT_EQ(best_first->top_k.size(), level_wise->top_k.size());
  for (size_t i = 0; i < best_first->top_k.size(); ++i) {
    EXPECT_NEAR(best_first->top_k[i].stats.score,
                level_wise->top_k[i].stats.score, 1e-9);
  }
  EXPECT_GT(best_first->total_evaluated, 0);
}

TEST(BestFirstTest, PerfectModelReturnsNothing) {
  RandomInput input = MakeRandom(91, 100, 3, 3);
  std::fill(input.errors.begin(), input.errors.end(), 0.0);
  auto result =
      RunSliceLineBestFirst(input.x0, input.errors, SliceLineConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->top_k.empty());
}

TEST(BestFirstTest, ValidatesInputs) {
  RandomInput input = MakeRandom(92, 50, 3, 3);
  SliceLineConfig config;
  config.alpha = 2.0;
  EXPECT_FALSE(RunSliceLineBestFirst(input.x0, input.errors, config).ok());
  config = SliceLineConfig();
  std::vector<double> wrong(10, 0.1);
  EXPECT_FALSE(RunSliceLineBestFirst(input.x0, wrong, config).ok());
}

}  // namespace
}  // namespace sliceline::core
