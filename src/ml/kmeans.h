#ifndef SLICELINE_ML_KMEANS_H_
#define SLICELINE_ML_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"

namespace sliceline::ml {

/// Lloyd's k-means on sparse rows with dense centroids. The paper uses
/// k-means to derive artificial labels for USCensus; we provide the same
/// capability for datasets without labels.
class KMeans {
 public:
  struct Options {
    int k = 4;
    int max_iterations = 25;
    uint64_t seed = 7;
  };

  struct Result {
    linalg::DenseMatrix centroids;     ///< k x num_features
    std::vector<double> assignments;   ///< cluster id per row
    double inertia = 0.0;              ///< sum of squared distances
    int iterations = 0;                ///< iterations until convergence
  };

  /// Runs k-means++ initialization followed by Lloyd iterations.
  static StatusOr<Result> Run(const linalg::CsrMatrix& x,
                              const Options& options);
  static StatusOr<Result> Run(const linalg::CsrMatrix& x) {
    return Run(x, Options());
  }
};

}  // namespace sliceline::ml

#endif  // SLICELINE_ML_KMEANS_H_
