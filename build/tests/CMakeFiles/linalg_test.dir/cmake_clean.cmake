file(REMOVE_RECURSE
  "CMakeFiles/linalg_test.dir/linalg/csr_matrix_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/csr_matrix_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/dense_matrix_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/dense_matrix_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/kernels_property_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/kernels_property_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/kernels_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/kernels_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/matrix_io_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/matrix_io_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/spgemm_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/spgemm_test.cc.o.d"
  "linalg_test"
  "linalg_test.pdb"
  "linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
