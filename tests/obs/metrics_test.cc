// Metrics registry: sharded counters/gauges/histograms, registration
// semantics, snapshot export, the global enable switch, and the
// determinism guarantees the per-level counters rely on (integer sums and
// fixed-point histogram sums are order-independent across threads).
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace sliceline::obs {
namespace {

/// Every test runs with metrics enabled and a clean default registry, and
/// restores the prior enabled state so unrelated suites in this binary see
/// the default-off configuration.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
    MetricsRegistry::Default()->ResetValues();
  }
  void TearDown() override {
    MetricsRegistry::Default()->ResetValues();
    SetMetricsEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Add(5);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 6);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST_F(MetricsTest, DisabledCounterRecordsNothing) {
  SetMetricsEnabled(false);
  Counter counter;
  counter.Add(100);
  EXPECT_EQ(counter.Value(), 0);
  SetMetricsEnabled(true);
  counter.Add(1);
  EXPECT_EQ(counter.Value(), 1);
}

TEST_F(MetricsTest, CounterIsExactUnderConcurrency) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(3);
    });
  }
  for (auto& thread : threads) thread.join();
  // Integer addition commutes: the sharded total is exact, not approximate.
  EXPECT_EQ(counter.Value(),
            static_cast<int64_t>(kThreads) * kIncrements * 3);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Set(-7.0);
  EXPECT_EQ(gauge.Value(), -7.0);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST_F(MetricsTest, HistogramBucketsAndSum) {
  HistogramOptions options;
  options.base = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;  // bounds 1, 2, 4 + overflow
  Histogram histogram(options);
  ASSERT_EQ(histogram.UpperBounds().size(), 3u);
  EXPECT_DOUBLE_EQ(histogram.UpperBounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(histogram.UpperBounds()[1], 2.0);
  EXPECT_DOUBLE_EQ(histogram.UpperBounds()[2], 4.0);

  histogram.Observe(0.5);   // bucket 0
  histogram.Observe(1.5);   // bucket 1
  histogram.Observe(3.0);   // bucket 2
  histogram.Observe(100.0); // overflow
  EXPECT_EQ(histogram.Count(), 4);
  EXPECT_NEAR(histogram.Sum(), 105.0, 1e-6);
  const std::vector<int64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets[3], 1);

  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0);
  EXPECT_EQ(histogram.Sum(), 0.0);
}

TEST_F(MetricsTest, HistogramSumIsOrderIndependentAcrossThreads) {
  // The sum accumulates in 1e-9 fixed point, so any interleaving of the
  // same observations produces the same bits.
  HistogramOptions options;
  Histogram histogram(options);
  constexpr int kThreads = 4;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kObservations; ++i) {
        histogram.Observe(0.000125);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(),
            static_cast<int64_t>(kThreads) * kObservations);
  // Exact equality on purpose: fixed-point accumulation, not float sums.
  EXPECT_EQ(histogram.Sum(), kThreads * kObservations * 0.000125);
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test/counter");
  Counter* b = registry.GetCounter("test/counter");
  EXPECT_EQ(a, b);
  Gauge* g = registry.GetGauge("test/gauge");
  EXPECT_EQ(g, registry.GetGauge("test/gauge"));
  Histogram* h = registry.GetHistogram("test/histogram");
  EXPECT_EQ(h, registry.GetHistogram("test/histogram"));
}

TEST_F(MetricsTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b/counter")->Add(7);
  registry.GetGauge("a/gauge")->Set(1.5);
  registry.GetHistogram("c/histogram")->Observe(0.5);

  const std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a/gauge");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[0].gauge_value, 1.5);
  EXPECT_EQ(samples[1].name, "b/counter");
  EXPECT_EQ(samples[1].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[1].counter_value, 7);
  EXPECT_EQ(samples[2].name, "c/histogram");
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[2].histogram_count, 1);
  EXPECT_EQ(samples[2].histogram_buckets.size(),
            samples[2].histogram_bounds.size() + 1);
}

TEST_F(MetricsTest, ResetValuesZeroesButKeepsRegistration) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("x/counter");
  counter->Add(3);
  registry.ResetValues();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(registry.GetCounter("x/counter"), counter);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
}

TEST_F(MetricsTest, ConcurrentRegistrationYieldsOneMetric) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("race/counter")->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.Snapshot().size(), 1u);
  EXPECT_EQ(registry.GetCounter("race/counter")->Value(), kThreads * 200);
}

TEST_F(MetricsTest, LevelMetricNameComposition) {
  EXPECT_EQ(LevelMetricName("native", 3, "candidates"),
            "native/level3/candidates");
  EXPECT_EQ(LevelMetricName("la", 1, "pruned"), "la/level1/pruned");
}

TEST_F(MetricsTest, RecordLevelMetricsMirrorsLevelStats) {
  MetricsRegistry* registry = MetricsRegistry::Default();
  RecordLevelMetrics("testengine", 2, /*candidates=*/10, /*valid=*/7,
                     /*pruned=*/3, /*seconds=*/0.25);
  EXPECT_EQ(registry->GetCounter("testengine/level2/candidates")->Value(), 10);
  EXPECT_EQ(registry->GetCounter("testengine/level2/valid")->Value(), 7);
  EXPECT_EQ(registry->GetCounter("testengine/level2/pruned")->Value(), 3);
  EXPECT_EQ(registry->GetHistogram("testengine/level_seconds")->Count(), 1);
}

}  // namespace
}  // namespace sliceline::obs
