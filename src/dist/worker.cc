#include "dist/worker.h"

#include <unistd.h>

#include <atomic>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "dist/fault_injection.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "serve/protocol.h"

namespace sliceline::dist {

namespace {

/// Process-global instance counter: a Worker restarted in-process (tests)
/// must present a fresh session just like a restarted OS process would.
std::atomic<int64_t> g_worker_instances{0};

/// Rebuilds FeatureOffsets from shipped per-feature domains. Unlike
/// data::ComputeOffsets this does not derive domains from the matrix -- a
/// shard may not observe every code of a feature, and the worker must use
/// the coordinator's global column space for partials to align.
data::FeatureOffsets OffsetsFromDomains(const std::vector<int32_t>& fdom) {
  data::FeatureOffsets offsets;
  offsets.fdom = fdom;
  offsets.fb.resize(fdom.size());
  offsets.fe.resize(fdom.size());
  int64_t column = 0;
  for (size_t j = 0; j < fdom.size(); ++j) {
    offsets.fb[j] = column;
    column += fdom[j];
    offsets.fe[j] = column;
  }
  offsets.total = column;
  return offsets;
}

StatusOr<core::SliceLineConfig::EvalStrategy> StrategyFromName(
    const std::string& name) {
  if (name == "index") return core::SliceLineConfig::EvalStrategy::kIndex;
  if (name == "scan") return core::SliceLineConfig::EvalStrategy::kScanBlock;
  if (name == "bitset") return core::SliceLineConfig::EvalStrategy::kBitset;
  return Status::InvalidArgument("unknown eval strategy '" + name + "'");
}

}  // namespace

Worker::Worker(const WorkerOptions& options) : options_(options) {
  session_ = "w" + std::to_string(getpid()) + "-" +
             std::to_string(g_worker_instances.fetch_add(1));
}

Worker::~Worker() {
  RequestShutdown();
  Wait();
}

Status Worker::Start() {
  if (!options_.unix_socket.empty()) {
    SLICELINE_ASSIGN_OR_RETURN(listener_,
                               ListenSocket::ListenUnix(options_.unix_socket));
  } else {
    SLICELINE_ASSIGN_OR_RETURN(listener_,
                               ListenSocket::ListenTcp(options_.tcp_port));
    tcp_port_ = listener_.bound_port();
  }
  thread_ = std::thread(&Worker::Serve, this);
  return Status::OK();
}

void Worker::Wait() {
  if (thread_.joinable()) thread_.join();
}

void Worker::Serve() {
  while (!shutdown_.load()) {
    StatusOr<SocketConnection> conn = listener_.Accept(100);
    if (!conn.ok()) continue;  // accept timeout or transient error
    ServeConnection(std::move(conn).value());
  }
  listener_.Close();
}

void Worker::ServeConnection(SocketConnection conn) {
  while (!shutdown_.load()) {
    StatusOr<bool> readable = conn.WaitReadable(100);
    if (!readable.ok()) return;
    if (!readable.value()) continue;

    StatusOr<std::string> line =
        conn.ReadLine(serve::kWorkerMaxLineBytes);
    if (!line.ok()) {
      // Oversized line: the stream is desynchronized -- answer with a
      // structured error, then drop the connection. EOF / I/O error: just
      // drop; the coordinator reconnects.
      if (line.status().code() == StatusCode::kResourceExhausted) {
        (void)conn.WriteLine(serve::MakeErrorLine("", line.status()),
                             serve::kWorkerMaxLineBytes);
      }
      return;
    }

    ++requests_seen_;
    if (options_.drop_every > 0 &&
        requests_seen_ % options_.drop_every == 0) {
      // Injected transient failure: vanish mid-protocol without a response.
      return;
    }

    StatusOr<serve::WorkerRequest> request =
        serve::ParseWorkerRequest(line.value());
    std::string response;
    bool stop_after_reply = false;
    if (!request.ok()) {
      response = serve::MakeErrorLine("", request.status());
    } else {
      response = Handle(request.value());
      stop_after_reply =
          request.value().type == serve::WorkerRequestType::kShutdown;
    }
    if (!conn.WriteLine(response, serve::kWorkerMaxLineBytes).ok()) return;
    requests_served_.fetch_add(1);
    if (stop_after_reply) {
      shutdown_.store(true);
      return;
    }
  }
}

std::string Worker::Handle(const serve::WorkerRequest& request) {
  // A coordinator that sends a trace id has fleet tracing on: start
  // recording (idempotent) and stamp everything this request records so
  // get_spans can ship it back attributed to the right job.
  if (request.trace_id != 0 && !obs::TraceRecorder::Default()->enabled()) {
    obs::TraceRecorder::Default()->SetProcessLabel("worker " + session_);
    obs::TraceRecorder::Default()->SetEnabled(true);
    // Counter deltas ship alongside the spans; without this the work
    // accounting (worker/eval_blocks, worker/eval_slices) stays zero.
    obs::SetMetricsEnabled(true);
  }
  obs::ScopedTraceContext trace_context(
      obs::TraceContext{request.trace_id, request.parent_span_id});
  StatusOr<std::string> response = Status::Internal("unhandled request");
  switch (request.type) {
    case serve::WorkerRequestType::kEnlist:
      response = HandleEnlist(request);
      break;
    case serve::WorkerRequestType::kHasShard: {
      std::ostringstream os;
      obs::JsonWriter writer(os);
      serve::BeginOkResponse(&writer, request.id);
      writer.Key("loaded");
      writer.Bool(shards_.count({request.dataset_hash, request.shard}) > 0);
      writer.EndObject();
      os << '\n';
      response = os.str();
      break;
    }
    case serve::WorkerRequestType::kLoadShard:
      response = HandleLoadShard(request);
      break;
    case serve::WorkerRequestType::kBasicStats:
      response = HandleBasicStats(request);
      break;
    case serve::WorkerRequestType::kEvalBlock:
      response = HandleEvalBlock(request);
      break;
    case serve::WorkerRequestType::kGetSpans:
      response = HandleGetSpans(request);
      break;
    case serve::WorkerRequestType::kHeartbeat: {
      std::ostringstream os;
      obs::JsonWriter writer(os);
      serve::BeginOkResponse(&writer, request.id);
      // Steady-clock sample for the coordinator's offset estimation.
      writer.Key("now_us");
      writer.Int(obs::TraceRecorder::NowMicros());
      writer.EndObject();
      os << '\n';
      response = os.str();
      break;
    }
    case serve::WorkerRequestType::kShutdown: {
      std::ostringstream os;
      obs::JsonWriter writer(os);
      serve::BeginOkResponse(&writer, request.id);
      writer.EndObject();
      os << '\n';
      response = os.str();
      break;
    }
  }
  if (!response.ok()) return serve::MakeErrorLine(request.id, response.status());
  return std::move(response).value();
}

StatusOr<std::string> Worker::HandleEnlist(
    const serve::WorkerRequest& request) {
  if (request.protocol != serve::kWorkerProtocolVersion) {
    return Status::InvalidArgument(
        "worker protocol mismatch: coordinator speaks " +
        std::to_string(request.protocol) + ", worker speaks " +
        std::to_string(serve::kWorkerProtocolVersion));
  }
  std::ostringstream os;
  obs::JsonWriter writer(os);
  serve::BeginOkResponse(&writer, request.id);
  writer.Key("protocol");
  writer.Int(serve::kWorkerProtocolVersion);
  writer.Key("session");
  writer.String(session_);
  writer.Key("now_us");
  writer.Int(obs::TraceRecorder::NowMicros());
  writer.Key("pid");
  writer.Int(static_cast<int64_t>(getpid()));
  writer.EndObject();
  os << '\n';
  return os.str();
}

StatusOr<std::string> Worker::HandleLoadShard(
    const serve::WorkerRequest& request) {
  const serve::LoadShardChunk& c = request.chunk;
  const ShardKey key{request.dataset_hash, request.shard};
  if (request.shard < 0) {
    return Status::InvalidArgument("load_shard requires shard >= 0");
  }
  const int64_t shard_rows = c.row_end - c.row_begin;
  if (shard_rows <= 0 || c.cols <= 0 || c.chunks < 1 || c.chunk < 0 ||
      c.chunk >= c.chunks) {
    return Status::InvalidArgument("malformed load_shard geometry");
  }
  if (c.errors.empty() ||
      c.codes.size() != c.errors.size() * static_cast<size_t>(c.cols)) {
    return Status::InvalidArgument(
        "load_shard codes/errors sizes disagree with cols");
  }

  if (c.chunk == 0) {
    // (Re-)starting a transfer invalidates any previous copy of the shard.
    shards_.erase(key);
    if (c.fdom.size() != static_cast<size_t>(c.cols)) {
      return Status::InvalidArgument(
          "load_shard chunk 0 must carry one fdom entry per column");
    }
    ShardStaging staging;
    staging.row_begin = c.row_begin;
    staging.row_end = c.row_end;
    staging.cols = c.cols;
    staging.chunks = c.chunks;
    staging.fdom = c.fdom;
    staging_[key] = std::move(staging);
  }

  auto it = staging_.find(key);
  if (it == staging_.end()) {
    return Status::InvalidArgument(
        "load_shard chunk arrived with no transfer in progress");
  }
  ShardStaging& staging = it->second;
  const int64_t rows_so_far =
      static_cast<int64_t>(staging.errors.size());
  if (c.chunk != staging.next_chunk || c.chunks != staging.chunks ||
      c.row_begin != staging.row_begin || c.row_end != staging.row_end ||
      c.cols != staging.cols ||
      c.chunk_row_begin != staging.row_begin + rows_so_far) {
    staging_.erase(it);
    return Status::InvalidArgument(
        "out-of-order load_shard chunk; restart the transfer");
  }
  staging.codes.insert(staging.codes.end(), c.codes.begin(), c.codes.end());
  staging.errors.insert(staging.errors.end(), c.errors.begin(),
                        c.errors.end());
  ++staging.next_chunk;

  bool loaded = false;
  if (staging.next_chunk == staging.chunks) {
    const int64_t rows = static_cast<int64_t>(staging.errors.size());
    if (rows != shard_rows) {
      staging_.erase(it);
      return Status::InvalidArgument(
          "load_shard transfer ended with " + std::to_string(rows) +
          " rows, expected " + std::to_string(shard_rows));
    }
    auto state = std::make_unique<ShardState>();
    state->x0 = data::IntMatrix(rows, staging.cols);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t j = 0; j < staging.cols; ++j) {
        const int32_t code = staging.codes[r * staging.cols + j];
        if (code < 1 || code > staging.fdom[j]) {
          staging_.erase(it);
          return Status::InvalidArgument(
              "shard code out of domain at row " + std::to_string(r) +
              ", feature " + std::to_string(j));
        }
        state->x0.At(r, j) = code;
      }
    }
    state->errors = std::move(staging.errors);
    state->offsets = OffsetsFromDomains(staging.fdom);
    state->row_begin = staging.row_begin;
    state->row_end = staging.row_end;
    state->evaluator = std::make_unique<core::SliceEvaluator>(
        state->x0, state->offsets, state->errors);
    staging_.erase(it);
    shards_[key] = std::move(state);
    loaded = true;
    LOG_DEBUG << "worker " << session_ << ": loaded shard " << request.shard
              << " (" << rows << " rows) of dataset " << request.dataset_hash;
  }

  std::ostringstream os;
  obs::JsonWriter writer(os);
  serve::BeginOkResponse(&writer, request.id);
  writer.Key("loaded");
  writer.Bool(loaded);
  writer.EndObject();
  os << '\n';
  return os.str();
}

StatusOr<std::string> Worker::HandleBasicStats(
    const serve::WorkerRequest& request) {
  TRACE_SPAN("worker/basic_stats", request.shard);
  auto it = shards_.find({request.dataset_hash, request.shard});
  if (it == shards_.end()) {
    return Status::NotFound("shard " + std::to_string(request.shard) +
                            " is not loaded in this session");
  }
  const core::SliceEvaluator& evaluator = *it->second->evaluator;
  serve::ShardBasicStats stats;
  stats.n = evaluator.n();
  stats.total_error = evaluator.total_error();
  stats.sizes = evaluator.basic_sizes();
  stats.error_sums = evaluator.basic_error_sums();
  stats.max_errors = evaluator.basic_max_errors();

  std::ostringstream os;
  obs::JsonWriter writer(os);
  serve::BeginOkResponse(&writer, request.id);
  serve::WriteBasicStatsPayload(&writer, stats);
  writer.EndObject();
  os << '\n';
  return os.str();
}

StatusOr<std::string> Worker::HandleEvalBlock(
    const serve::WorkerRequest& request) {
  TRACE_SPAN("worker/eval_block", request.shard);
  auto it = shards_.find({request.dataset_hash, request.shard});
  if (it == shards_.end()) {
    return Status::NotFound("shard " + std::to_string(request.shard) +
                            " is not loaded in this session");
  }
  core::SliceLineConfig config;
  SLICELINE_ASSIGN_OR_RETURN(config.eval_strategy,
                             StrategyFromName(request.strategy));
  if (request.block_size < 1) {
    return Status::InvalidArgument("block_size must be >= 1");
  }
  config.eval_block_size = static_cast<int>(request.block_size);
  // Worker-side evaluation is single-threaded: intra-worker determinism is
  // part of the bit-identical aggregation contract.
  config.parallel = false;
  SLICELINE_ASSIGN_OR_RETURN(
      core::EvalResult partial,
      it->second->evaluator->Evaluate(request.slices, config));
  const uint64_t checksum = ChecksumPartial(partial);
  // Per-worker work accounting, shipped back via get_spans; the coordinator
  // cross-checks the fleet-wide sum against its own DistCost.
  obs::MetricsRegistry::Default()->GetCounter("worker/eval_blocks")
      ->Increment();
  obs::MetricsRegistry::Default()->GetCounter("worker/eval_slices")
      ->Add(request.slices.size());

  std::ostringstream os;
  obs::JsonWriter writer(os);
  serve::BeginOkResponse(&writer, request.id);
  serve::WriteEvalPayload(&writer, partial, checksum);
  writer.EndObject();
  os << '\n';
  return os.str();
}

StatusOr<std::string> Worker::HandleGetSpans(
    const serve::WorkerRequest& request) {
  // Drain the recorder (one coordinator per worker, so everything buffered
  // belongs to it) and ship absolute counter values; the coordinator owns
  // the per-session baselines and turns them into deltas.
  std::vector<obs::RemoteSpan> spans;
  for (const obs::TraceEvent& event :
       obs::TraceRecorder::Default()->TakeEvents()) {
    spans.push_back(obs::RemoteSpanFromEvent(event));
  }
  std::vector<std::pair<std::string, double>> counters;
  for (const obs::MetricSample& sample :
       obs::MetricsRegistry::Default()->Snapshot()) {
    if (sample.kind == obs::MetricSample::Kind::kCounter) {
      counters.emplace_back(sample.name,
                            static_cast<double>(sample.counter_value));
    }
  }

  std::ostringstream os;
  obs::JsonWriter writer(os);
  serve::BeginOkResponse(&writer, request.id);
  writer.Key("now_us");
  writer.Int(obs::TraceRecorder::NowMicros());
  writer.Key("pid");
  writer.Int(static_cast<int64_t>(getpid()));
  writer.Key("session");
  writer.String(session_);
  serve::WriteSpansPayload(&writer, spans, counters);
  writer.EndObject();
  os << '\n';
  return os.str();
}

}  // namespace sliceline::dist
