// Reproduces Figure 6(a) (Local End-to-End Runtime): total slice-finding
// runtime per dataset with defaults sigma = n/100, alpha = 0.95,
// ceil(L) = 3, including one-hot encoding/index construction, as the paper
// measures end-to-end runtime including data preparation. Each dataset is
// run twice on the bit-packed evaluation strategy — kernels forced to the
// scalar reference, then dispatched at the best vector ISA — so the JSON
// doubles as the end-to-end scalar-vs-SIMD perf baseline.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "linalg/kernels_simd.h"

int main() {
  using namespace sliceline;
  bench::Banner("Figure 6(a): Local End-to-End Runtime",
                "SliceLine Figure 6(a)");
  bench::Reporter reporter("bench_fig6_runtime", "SliceLine Figure 6(a)");
  const linalg::SimdIsa best_isa = linalg::AvailableIsas().back();
  reporter.Annotate("simd_best_isa", linalg::IsaName(best_isa));
  std::printf("%-12s %12s %8s %12s %12s %12s %12s %9s\n", "dataset", "rows",
              "m", "evaluated", "top1-score", "scalar[s]",
              (std::string(linalg::IsaName(best_isa)) + "[s]").c_str(),
              "speedup");
  const std::vector<const char*> names = {"salaries", "adult", "covtype",
                                          "kdd98",    "uscensus", "criteo"};
  for (const char* name : names) {
    data::EncodedDataset ds = bench::Load(name);
    core::SliceLineConfig config;
    config.alpha = 0.95;
    config.k = 4;
    config.max_level = 3;
    config.eval_strategy = core::SliceLineConfig::EvalStrategy::kBitset;
    core::SliceLineResult result;
    // Timed() includes one-hot/index prep inside RunSliceLine.
    linalg::ForceIsa(linalg::SimdIsa::kScalar);
    const double scalar_seconds = bench::Timed([&] {
      result = bench::Unwrap(core::RunSliceLine(ds, config),
                             std::string(name) + "/scalar");
    });
    linalg::ForceIsa(best_isa);
    const double simd_seconds = bench::Timed([&] {
      result = bench::Unwrap(core::RunSliceLine(ds, config),
                             std::string(name) + "/simd");
    });
    linalg::ClearForcedIsa();
    const double top1 =
        result.top_k.empty() ? 0.0 : result.top_k[0].stats.score;
    const double speedup =
        simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 0.0;
    std::printf("%-12s %12s %8lld %12s %12s %12s %12s %8.2fx\n", name,
                FormatWithCommas(ds.n()).c_str(),
                static_cast<long long>(ds.m()),
                FormatWithCommas(result.total_evaluated).c_str(),
                FormatDouble(top1, 4).c_str(),
                FormatDouble(scalar_seconds, 3).c_str(),
                FormatDouble(simd_seconds, 3).c_str(), speedup);
    reporter.AddRow(name,
                    {{"rows", static_cast<double>(ds.n())},
                     {"features", static_cast<double>(ds.m())},
                     {"evaluated", static_cast<double>(result.total_evaluated)},
                     {"top1_score", top1},
                     {"seconds", simd_seconds},
                     {"seconds_scalar", scalar_seconds},
                     {"simd_speedup", speedup}});
  }
  std::printf(
      "\nExpected shape (paper): all datasets complete in interactive time\n"
      "despite many rows (uscensus), many features (kdd98), and strong\n"
      "correlations (covtype/uscensus/criteo). The scalar and SIMD columns\n"
      "time the same bit-packed run; end-to-end speedup is bounded by the\n"
      "non-kernel share (encoding, candidate generation, pruning).\n");
  return reporter.Finish();
}
