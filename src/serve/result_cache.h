#ifndef SLICELINE_SERVE_RESULT_CACHE_H_
#define SLICELINE_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/slice.h"

namespace sliceline::serve {

/// One cached find_slices result. Immutable once inserted; shared with
/// every response that hits it.
struct CachedResult {
  core::SliceLineResult result;
  std::vector<std::string> feature_names;
};

/// LRU cache of completed slice-finding results keyed by
/// (dataset content hash, canonicalized config hash). The config half is
/// core::HashConfigForCheckpoint over the resolved sigma and engine, i.e.
/// exactly the parameters the result depends on -- requests that differ only
/// in presentation (correlation id, wait flag, deadline) share an entry.
/// Only runs with outcome kCompleted are inserted: partial/degraded results
/// depend on transient resource pressure and must not be replayed.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity);

  /// Returns the entry (bumping it to most-recently-used) or nullptr.
  /// Counts a hit or a miss either way.
  std::shared_ptr<const CachedResult> Lookup(uint64_t data_hash,
                                             uint64_t config_hash);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when over capacity. Capacity 0 disables caching entirely.
  void Insert(uint64_t data_hash, uint64_t config_hash,
              std::shared_ptr<const CachedResult> result);

  /// Drops every entry keyed on `data_hash` -- the hash a dataset carried
  /// *before* an append advanced its fingerprint chain (or before it was
  /// unregistered). Returns the number of entries dropped.
  int64_t InvalidateDataset(uint64_t data_hash);

  size_t size() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  int64_t invalidations() const;

 private:
  using Key = std::pair<uint64_t, uint64_t>;  ///< (data_hash, config_hash)

  struct KeyHash {
    size_t operator()(const Key& key) const {
      // The halves are already FNV-1a hashes; a multiplicative mix is
      // enough to decorrelate them for bucket selection.
      return static_cast<size_t>(key.first * 0x9e3779b97f4a7c15ULL ^
                                 key.second);
    }
  };

  struct Entry {
    std::shared_ptr<const CachedResult> result;
    std::list<Key>::iterator lru_position;
  };

  mutable std::mutex mutex_;
  size_t capacity_;
  std::list<Key> lru_;  ///< front = most recently used
  std::unordered_map<Key, Entry, KeyHash> entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
};

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_RESULT_CACHE_H_
