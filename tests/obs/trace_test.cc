// Trace recorder: enable/disable semantics, span and instant recording
// across threads, the structured-event counter side channel, and
// Chrome-trace export validity (strict JSON with the traceEvents envelope).
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json_validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = TraceRecorder::Default()->enabled();
    metrics_were_enabled_ = MetricsEnabled();
    TraceRecorder::Default()->Clear();
    TraceRecorder::Default()->SetEnabled(true);
    SetMetricsEnabled(true);
    MetricsRegistry::Default()->ResetValues();
  }
  void TearDown() override {
    TraceRecorder::Default()->Clear();
    TraceRecorder::Default()->SetEnabled(was_enabled_);
    MetricsRegistry::Default()->ResetValues();
    SetMetricsEnabled(metrics_were_enabled_);
  }

 private:
  bool was_enabled_ = false;
  bool metrics_were_enabled_ = false;
};

TEST_F(TraceTest, DisabledRecorderDropsSpans) {
  TraceRecorder::Default()->SetEnabled(false);
  { TRACE_SPAN("test/disabled"); }
  TraceInstant("test", "disabled_instant");
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 0u);
}

TEST_F(TraceTest, SpansAndInstantsAreRecorded) {
  {
    TRACE_SPAN("test/outer");
    { TRACE_SPAN("test/inner", 3); }
  }
  TraceInstant("test", "marker", 7);
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 3u);
}

TEST_F(TraceTest, InstantBumpsStructuredEventCounter) {
  TraceInstant("governance", "degrade_raise_sigma", 2);
  TraceInstant("governance", "degrade_raise_sigma", 3);
  EXPECT_EQ(MetricsRegistry::Default()
                ->GetCounter("events/governance/degrade_raise_sigma")
                ->Value(),
            2);
}

TEST_F(TraceTest, ExportIsStrictJsonWithEnvelope) {
  {
    TRACE_SPAN("test/span", 42);
  }
  TraceInstant("test", "instant");
  std::ostringstream os;
  TraceRecorder::Default()->ExportChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_EQ(ValidateStrictJson(trace), "") << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"test/span\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"v\":42}"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceExportsValidJson) {
  std::ostringstream os;
  TraceRecorder::Default()->ExportChromeTrace(os);
  EXPECT_EQ(ValidateStrictJson(os.str()), "") << os.str();
}

TEST_F(TraceTest, ConcurrentSpansAllLand) {
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TRACE_SPAN("test/concurrent", i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(TraceRecorder::Default()->EventCount(),
            static_cast<size_t>(kThreads) * kSpans);
  std::ostringstream os;
  TraceRecorder::Default()->ExportChromeTrace(os);
  EXPECT_EQ(ValidateStrictJson(os.str()), "");
}

TEST_F(TraceTest, ClearDropsEverything) {
  { TRACE_SPAN("test/span"); }
  ASSERT_GT(TraceRecorder::Default()->EventCount(), 0u);
  TraceRecorder::Default()->Clear();
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 0u);
}

TEST_F(TraceTest, SpanStartedWhileEnabledRecordsAfterDisable) {
  // The enabled check is at construction: a span that begins enabled must
  // not vanish because tracing flipped off before it ended.
  {
    TRACE_SPAN("test/straddler");
    TraceRecorder::Default()->SetEnabled(false);
  }
  EXPECT_EQ(TraceRecorder::Default()->EventCount(), 1u);
}

}  // namespace
}  // namespace sliceline::obs
