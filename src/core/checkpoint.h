#ifndef SLICELINE_CORE_CHECKPOINT_H_
#define SLICELINE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "common/status.h"
#include "core/evaluator.h"
#include "core/slice.h"
#include "linalg/csr_matrix.h"

namespace sliceline::core {

/// The checkpoint's config/data fingerprints and file checksum use the
/// shared FNV-1a hasher from common/hashing.h (also the serving layer's
/// registry and result-cache key hash, so fingerprints agree everywhere).
using ::sliceline::Fnv1a;

/// Everything a level-wise engine needs to continue a run from the end of a
/// completed level: the surviving frontier (slice matrix + aligned ss/se/sm
/// statistics), the top-K so far, per-level stats, and the governance
/// counters. The three hashes bind a checkpoint to one (engine, config,
/// dataset) triple -- resume silently falls back to a fresh run on any
/// mismatch, so a stale file can slow a run down but never corrupt it.
struct CheckpointState {
  static constexpr int kVersion = 1;

  std::string engine;        ///< "native" or "la"
  uint64_t config_hash = 0;  ///< HashConfigForCheckpoint of the run's config
  uint64_t data_hash = 0;    ///< engine-computed dataset fingerprint
  uint64_t aux_hash = 0;     ///< engine-specific (LA: kept_cols); 0 otherwise
  int level = 0;             ///< last fully completed level
  int64_t effective_sigma = 0;
  int degradation_steps = 0;
  int64_t candidates_capped = 0;
  int64_t total_evaluated = 0;
  /// Reserved for engines that consume randomness mid-run (none do today);
  /// serialized so the format does not need a version bump to add it.
  uint64_t rng_state[4] = {0, 0, 0, 0};
  std::vector<LevelStats> levels;
  std::vector<Slice> topk;  ///< descending score order
  std::vector<double> frontier_ss;
  std::vector<double> frontier_se;
  std::vector<double> frontier_sm;
  /// Surviving slice matrix: one row per frontier slice over the engine's
  /// column space (native: one-hot columns; LA: compacted kept columns).
  linalg::CsrMatrix frontier;
};

/// Fingerprint of the problem parameters that must match for a resume to be
/// sound (k, alpha, sigma, level cap, pruning toggles, engine).
uint64_t HashConfigForCheckpoint(const SliceLineConfig& config, int64_t sigma,
                                 const std::string& engine);

/// The single rolling checkpoint file inside `dir`.
std::string CheckpointFilePath(const std::string& dir);

bool CheckpointFileExists(const std::string& dir);

/// Serializes `state` to CheckpointFilePath(dir): versioned text header,
/// %.17g doubles (exact round-trip), the frontier embedded as MatrixMarket
/// via matrix_io, and a trailing FNV-1a checksum over the payload. Written
/// to a temp file and renamed into place so a crash mid-save leaves the
/// previous checkpoint intact.
Status SaveCheckpoint(const std::string& dir, const CheckpointState& state);

/// Loads and validates (version, checksum, structural bounds) the
/// checkpoint in `dir`. Hash matching against the current run is the
/// caller's job.
StatusOr<CheckpointState> LoadCheckpoint(const std::string& dir);

/// Conversions between the native engine's SliceSet frontier and the CSR
/// form the checkpoint stores (each slice row holds 1.0 at its one-hot
/// columns; CSR keeps row order and sorted columns, so the round-trip is
/// exact).
linalg::CsrMatrix SliceSetToCsr(const SliceSet& set, int64_t cols);
SliceSet CsrToSliceSet(const linalg::CsrMatrix& matrix);

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_CHECKPOINT_H_
