// Strict (RFC 8259) JSON validator used by the shell-based regression tests
// to assert that --metrics-json / --trace-out output is machine-parseable
// without depending on a host python/jq. Reads one JSON document from the
// file given as argv[1] (or stdin when absent or "-"); exits 0 when the
// document is valid and nothing but whitespace follows it, 1 otherwise with
// a byte-offset diagnostic on stderr. The validation itself lives in
// obs::ValidateStrictJson so the schema tests share the exact same rules.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json_validate.h"

int main(int argc, char** argv) {
  std::string input;
  const std::string path = argc > 1 ? argv[1] : "-";
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    input = buffer.str();
  } else {
    std::ifstream file(path, std::ios::in | std::ios::binary);
    if (!file.is_open()) {
      std::cerr << "json_validate: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    input = buffer.str();
  }

  const std::string error = sliceline::obs::ValidateStrictJson(input);
  if (!error.empty()) {
    std::cerr << "json_validate: " << path << ": " << error << "\n";
    return 1;
  }
  return 0;
}
