#include "serve/result_cache.h"

#include "obs/metrics.h"

namespace sliceline::serve {

namespace {

/// Registry counters mirror the local counters so /metrics exports cache
/// effectiveness without reaching into the cache object.
void CountCacheEvent(const char* name) {
  obs::MetricsRegistry::Default()->GetCounter(name)->Increment();
}

void SetEntriesGauge(size_t entries) {
  obs::MetricsRegistry::Default()
      ->GetGauge("serve/result_cache/entries")
      ->Set(static_cast<double>(entries));
}

}  // namespace

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const CachedResult> ResultCache::Lookup(uint64_t data_hash,
                                                        uint64_t config_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(Key{data_hash, config_hash});
  if (it == entries_.end()) {
    ++misses_;
    CountCacheEvent("serve/cache/misses");
    return nullptr;
  }
  ++hits_;
  CountCacheEvent("serve/cache/hits");
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  return it->second.result;
}

void ResultCache::Insert(uint64_t data_hash, uint64_t config_hash,
                         std::shared_ptr<const CachedResult> result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{data_hash, config_hash};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(result), lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    CountCacheEvent("serve/cache/evictions");
    CountCacheEvent("serve/result_cache/evictions");
  }
  SetEntriesGauge(entries_.size());
}

int64_t ResultCache::InvalidateDataset(uint64_t data_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first == data_hash) {
      lru_.erase(it->second.lru_position);
      it = entries_.erase(it);
      ++dropped;
      ++invalidations_;
      CountCacheEvent("serve/result_cache/invalidations");
    } else {
      ++it;
    }
  }
  if (dropped > 0) SetEntriesGauge(entries_.size());
  return dropped;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

int64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

int64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

int64_t ResultCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}

}  // namespace sliceline::serve
