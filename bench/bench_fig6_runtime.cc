// Reproduces Figure 6(a) (Local End-to-End Runtime): total slice-finding
// runtime per dataset with defaults sigma = n/100, alpha = 0.95,
// ceil(L) = 3, including one-hot encoding/index construction, as the paper
// measures end-to-end runtime including data preparation. Each dataset is
// run twice on the bit-packed evaluation strategy — kernels forced to the
// scalar reference, then dispatched at the best vector ISA — so the JSON
// doubles as the end-to-end scalar-vs-SIMD perf baseline.
// A third timed run per dataset repeats the best-ISA configuration with
// fleet tracing enabled (recorder on, a nonzero ambient trace context — the
// exact setup a traced server job runs under) and reports the relative
// overhead; the acceptance bar for always-on tracing is < 2%.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "linalg/kernels_simd.h"
#include "obs/trace.h"

int main() {
  using namespace sliceline;
  bench::Banner("Figure 6(a): Local End-to-End Runtime",
                "SliceLine Figure 6(a)");
  bench::Reporter reporter("bench_fig6_runtime", "SliceLine Figure 6(a)");
  // SelectedIsa() honors SLICELINE_FORCE_ISA, so a forced-scalar gate run
  // really times scalar in both columns instead of silently dispatching at
  // the detected best while annotating "scalar".
  const linalg::SimdIsa best_isa = linalg::SelectedIsa();
  reporter.Annotate("simd_best_isa", linalg::IsaName(best_isa));
  std::printf("%-12s %12s %8s %12s %12s %12s %12s %9s %9s\n", "dataset",
              "rows", "m", "evaluated", "top1-score", "scalar[s]",
              (std::string(linalg::IsaName(best_isa)) + "[s]").c_str(),
              "speedup", "trace-ovh");
  const std::vector<const char*> names = {"salaries", "adult", "covtype",
                                          "kdd98",    "uscensus", "criteo"};
  for (const char* name : names) {
    data::EncodedDataset ds = bench::Load(name);
    core::SliceLineConfig config;
    config.alpha = 0.95;
    config.k = 4;
    config.max_level = 3;
    config.eval_strategy = core::SliceLineConfig::EvalStrategy::kBitset;
    core::SliceLineResult result;
    // Timed() includes one-hot/index prep inside RunSliceLine. Every
    // recorded number is a best-of-N for datasets that finish quickly
    // (single-shot end-to-end runs swing tens of percent on a busy host,
    // which would trip any perf-regression threshold); datasets slower
    // than 5s keep a single sample.
    linalg::ForceIsa(linalg::SimdIsa::kScalar);
    double scalar_seconds = bench::Timed([&] {
      result = bench::Unwrap(core::RunSliceLine(ds, config),
                             std::string(name) + "/scalar");
    });
    const int extra_scalar = scalar_seconds < 1.0 ? 4 : 2;
    if (scalar_seconds < 5.0) {
      for (int repeat = 0; repeat < extra_scalar; ++repeat) {
        const double seconds = bench::Timed([&] {
          result = bench::Unwrap(core::RunSliceLine(ds, config),
                                 std::string(name) + "/scalar");
        });
        if (seconds < scalar_seconds) scalar_seconds = seconds;
      }
    }
    linalg::ForceIsa(best_isa);
    const double simd_seconds = bench::Timed([&] {
      result = bench::Unwrap(core::RunSliceLine(ds, config),
                             std::string(name) + "/simd");
    });
    // Same run with fleet tracing on: recorder enabled, ambient trace
    // context installed, exactly what a server job with a trace id sees.
    // Single runs are too noisy to resolve a <2% effect, so datasets that
    // finish quickly get interleaved repeat pairs and the minimum of each
    // arm (the standard best-of-N noise filter); slow datasets keep one
    // pair and their overhead column is read as indicative only.
    auto timed_traced = [&] {
      obs::TraceRecorder::Default()->SetEnabled(true);
      const double seconds = bench::Timed([&] {
        obs::ScopedTraceContext trace_context(
            obs::TraceContext{0xB16B00B5u, 0});
        result = bench::Unwrap(core::RunSliceLine(ds, config),
                               std::string(name) + "/traced");
      });
      obs::TraceRecorder::Default()->SetEnabled(false);
      obs::TraceRecorder::Default()->Clear();
      return seconds;
    };
    double best_plain = simd_seconds;
    double best_traced = timed_traced();
    const int extra_pairs = simd_seconds < 1.0 ? 4 : 2;
    if (simd_seconds < 5.0) {
      for (int repeat = 0; repeat < extra_pairs; ++repeat) {
        const double plain = bench::Timed([&] {
          result = bench::Unwrap(core::RunSliceLine(ds, config),
                                 std::string(name) + "/simd");
        });
        if (plain < best_plain) best_plain = plain;
        const double traced = timed_traced();
        if (traced < best_traced) best_traced = traced;
      }
    }
    const double traced_seconds = best_traced;
    linalg::ClearForcedIsa();
    const double top1 =
        result.top_k.empty() ? 0.0 : result.top_k[0].stats.score;
    const double speedup =
        best_plain > 0.0 ? scalar_seconds / best_plain : 0.0;
    const double trace_overhead =
        best_plain > 0.0 ? best_traced / best_plain - 1.0 : 0.0;
    std::printf("%-12s %12s %8lld %12s %12s %12s %12s %8.2fx %8.2f%%\n", name,
                FormatWithCommas(ds.n()).c_str(),
                static_cast<long long>(ds.m()),
                FormatWithCommas(result.total_evaluated).c_str(),
                FormatDouble(top1, 4).c_str(),
                FormatDouble(scalar_seconds, 3).c_str(),
                FormatDouble(best_plain, 3).c_str(), speedup,
                trace_overhead * 100.0);
    reporter.AddRow(name,
                    {{"rows", static_cast<double>(ds.n())},
                     {"features", static_cast<double>(ds.m())},
                     {"evaluated", static_cast<double>(result.total_evaluated)},
                     {"top1_score", top1},
                     {"seconds", best_plain},
                     {"seconds_scalar", scalar_seconds},
                     {"simd_speedup", speedup},
                     {"seconds_traced", traced_seconds},
                     {"trace_overhead", trace_overhead}});
  }
  std::printf(
      "\nExpected shape (paper): all datasets complete in interactive time\n"
      "despite many rows (uscensus), many features (kdd98), and strong\n"
      "correlations (covtype/uscensus/criteo). The scalar and SIMD columns\n"
      "time the same bit-packed run; end-to-end speedup is bounded by the\n"
      "non-kernel share (encoding, candidate generation, pruning).\n"
      "trace-ovh is the relative cost of running with fleet tracing on\n"
      "(recorder enabled + ambient trace context); it must stay under 2%%.\n");
  return reporter.Finish();
}
