#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/report.h"
#include "core/sliceline.h"
#include "core/sliceline_la.h"
#include "data/csv.h"
#include "data/generators/generators.h"
#include "data/preprocess.h"
#include "ml/pipeline.h"

namespace sliceline {
namespace {

// Full pipeline: generator -> real model training -> error materialization
// -> slice finding -> planted-slice recovery. This is the workflow the
// paper's Section 5.1 describes (materialize X0 and e, then run SliceLine).
TEST(EndToEndTest, TrainedModelErrorsRecoverPlantedSlices) {
  data::DatasetOptions opts;
  opts.rows = 6000;
  data::EncodedDataset ds = data::MakeAdult(opts);
  // Retrain a real model to produce genuine inaccuracy errors, with a
  // planted hard subgroup: flip labels for a large slice (sex=1 AND
  // marital=1) so any model provably mispredicts half of it. The slice is
  // big enough that the size term of Equation 1 cannot drown the signal.
  const std::vector<std::pair<int, int32_t>> planted = {{5, 1}, {9, 1}};
  int64_t flipped = 0;
  for (int64_t i = 0; i < ds.n(); ++i) {
    bool in_planted = true;
    for (const auto& [f, c] : planted) in_planted &= ds.x0.At(i, f) == c;
    if (in_planted && (i % 2 == 0)) {
      ds.y[i] = ds.y[i] == 0.0 ? 1.0 : 0.0;
      ++flipped;
    }
  }
  ASSERT_GT(flipped, 200);
  auto mean_err = ml::TrainAndMaterializeErrors(&ds);
  ASSERT_TRUE(mean_err.ok());

  core::SliceLineConfig config;
  config.k = 10;
  config.alpha = 0.95;
  config.max_level = 3;
  auto result = core::RunSliceLine(ds, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->top_k.empty());

  // Some returned slice overlaps the planted slice's predicates.
  bool hit = false;
  for (const core::Slice& slice : result->top_k) {
    for (const auto& pred : slice.predicates) {
      for (const auto& p : planted) {
        hit |= pred.first == p.first && pred.second == p.second;
      }
    }
  }
  EXPECT_TRUE(hit);
}

TEST(EndToEndTest, CsvToSlicesWorkflow) {
  // Mirror a user workflow: write a CSV, read it back, preprocess, train,
  // and debug. Use a planted categorical interaction.
  std::string csv = "color,shape,weight,target\n";
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const char* colors[3] = {"red", "green", "blue"};
    const char* shapes[2] = {"round", "square"};
    const char* color = colors[rng.NextUint64(3)];
    const char* shape = shapes[rng.NextUint64(2)];
    const double weight = rng.NextDouble(0.0, 10.0);
    double target = weight * 2.0 + (color == colors[0] ? 1.0 : 0.0);
    // The red+square subgroup is mislabeled -> high squared loss there.
    if (color == colors[0] && shape == shapes[1]) {
      target += rng.NextGaussian() * 8.0;
    } else {
      target += rng.NextGaussian() * 0.5;
    }
    csv += std::string(color) + "," + shape + "," +
           std::to_string(weight) + "," + std::to_string(target) + "\n";
  }
  auto frame = data::ParseCsv(csv);
  ASSERT_TRUE(frame.ok());
  data::PreprocessOptions popts;
  popts.label_column = "target";
  popts.task = data::Task::kRegression;
  auto ds = data::Preprocess(*frame, popts);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(ml::TrainAndMaterializeErrors(&*ds).ok());

  core::SliceLineConfig config;
  config.k = 3;
  config.alpha = 0.9;
  auto result = core::RunSliceLine(*ds, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->top_k.empty());
  // Top slice is color=red & shape=square (codes: red=1 first seen ...
  // verify via feature names instead of hard-coded codes).
  const core::Slice& top = result->top_k[0];
  const std::string rendered = top.ToString(ds->feature_names);
  EXPECT_NE(rendered.find("color"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("shape"), std::string::npos) << rendered;
}

TEST(EndToEndTest, ReportFormatting) {
  data::DatasetOptions opts;
  opts.rows = 800;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  core::SliceLineConfig config;
  config.k = 4;
  auto result = core::RunSliceLine(ds, config);
  ASSERT_TRUE(result.ok());
  const std::string report = core::FormatResult(*result, ds.feature_names);
  EXPECT_NE(report.find("Top-"), std::string::npos);
  EXPECT_NE(report.find("level 1"), std::string::npos);
  EXPECT_NE(report.find("Total:"), std::string::npos);
  const std::string summary = core::SummarizeResult(*result);
  EXPECT_NE(summary.find("top-1"), std::string::npos);
}

TEST(EndToEndTest, EnginesAgreeOnEveryGenerator) {
  for (const data::DatasetInfo& info : data::ListDatasets()) {
    data::DatasetOptions opts;
    // KDD98's 469 features produce thousands of valid basic slices; keep
    // the quadratic level-2 pair join affordable for the generic-kernel
    // engine by shrinking it harder and raising sigma below.
    opts.rows = info.name == "kdd98" ? 600 : 2000;
    auto ds = data::MakeDatasetByName(info.name, opts);
    ASSERT_TRUE(ds.ok());
    core::SliceLineConfig config;
    config.k = 4;
    config.min_support = ds->n() / 5;
    config.max_level = 2;  // keep LA path cheap on wide datasets
    auto native = core::RunSliceLine(*ds, config);
    auto la = core::RunSliceLineLA(*ds, config);
    ASSERT_TRUE(native.ok()) << info.name;
    ASSERT_TRUE(la.ok()) << info.name;
    ASSERT_EQ(native->top_k.size(), la->top_k.size()) << info.name;
    for (size_t i = 0; i < native->top_k.size(); ++i) {
      EXPECT_NEAR(native->top_k[i].stats.score, la->top_k[i].stats.score,
                  1e-9)
          << info.name << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace sliceline
