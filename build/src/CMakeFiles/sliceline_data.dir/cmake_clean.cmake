file(REMOVE_RECURSE
  "CMakeFiles/sliceline_data.dir/data/binning.cc.o"
  "CMakeFiles/sliceline_data.dir/data/binning.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/column.cc.o"
  "CMakeFiles/sliceline_data.dir/data/column.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/csv.cc.o"
  "CMakeFiles/sliceline_data.dir/data/csv.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/frame.cc.o"
  "CMakeFiles/sliceline_data.dir/data/frame.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/generators/adult.cc.o"
  "CMakeFiles/sliceline_data.dir/data/generators/adult.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/generators/covtype.cc.o"
  "CMakeFiles/sliceline_data.dir/data/generators/covtype.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/generators/criteo.cc.o"
  "CMakeFiles/sliceline_data.dir/data/generators/criteo.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/generators/kdd98.cc.o"
  "CMakeFiles/sliceline_data.dir/data/generators/kdd98.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/generators/planted_slices.cc.o"
  "CMakeFiles/sliceline_data.dir/data/generators/planted_slices.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/generators/registry.cc.o"
  "CMakeFiles/sliceline_data.dir/data/generators/registry.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/generators/salaries.cc.o"
  "CMakeFiles/sliceline_data.dir/data/generators/salaries.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/generators/uscensus.cc.o"
  "CMakeFiles/sliceline_data.dir/data/generators/uscensus.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/onehot.cc.o"
  "CMakeFiles/sliceline_data.dir/data/onehot.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/preprocess.cc.o"
  "CMakeFiles/sliceline_data.dir/data/preprocess.cc.o.d"
  "CMakeFiles/sliceline_data.dir/data/recode.cc.o"
  "CMakeFiles/sliceline_data.dir/data/recode.cc.o.d"
  "libsliceline_data.a"
  "libsliceline_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliceline_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
