// Quickstart: the smallest end-to-end SliceLine run.
//
// 1. Build an integer-encoded feature matrix X0 (1-based codes per column)
//    and a non-negative per-row error vector e from your model.
// 2. Configure the search (top-K, alpha, minimum support).
// 3. RunSliceLine and print the problematic slices.
//
// Here the "model" is simulated: rows with feature0=2 AND feature2=1 get a
// high error, and SliceLine recovers exactly that conjunction.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/report.h"
#include "core/sliceline.h"

int main() {
  using namespace sliceline;

  // Synthetic dataset: 5,000 rows, 4 categorical features.
  const int64_t n = 5000;
  Rng rng(1234);
  data::IntMatrix x0(n, 4);
  std::vector<double> errors(n);
  for (int64_t i = 0; i < n; ++i) {
    x0.At(i, 0) = static_cast<int32_t>(rng.NextUint64(3)) + 1;  // domain 3
    x0.At(i, 1) = static_cast<int32_t>(rng.NextUint64(5)) + 1;  // domain 5
    x0.At(i, 2) = static_cast<int32_t>(rng.NextUint64(2)) + 1;  // domain 2
    x0.At(i, 3) = static_cast<int32_t>(rng.NextUint64(4)) + 1;  // domain 4
    // Simulated model errors: bad on the planted slice, mild elsewhere.
    const bool planted = x0.At(i, 0) == 2 && x0.At(i, 2) == 1;
    errors[i] = rng.NextBool(planted ? 0.7 : 0.08) ? 1.0 : 0.0;
  }

  core::SliceLineConfig config;
  config.k = 4;        // return the top-4 slices
  config.alpha = 0.95; // weight errors over sizes (paper default)
  // config.min_support defaults to max(32, ceil(n/100)).

  auto result = core::RunSliceLine(x0, errors, config);
  if (!result.ok()) {
    std::fprintf(stderr, "SliceLine failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> names = {"plan", "region", "device",
                                          "channel"};
  std::printf("%s\n", core::FormatResult(*result, names).c_str());
  std::printf("The planted problematic slice was plan=2 & device=1.\n");
  return 0;
}
