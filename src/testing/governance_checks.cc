#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/run_context.h"
#include "core/exhaustive.h"
#include "core/sliceline.h"
#include "core/sliceline_bestfirst.h"
#include "core/sliceline_la.h"
#include "testing/checks.h"

namespace sliceline::testing {

namespace {

/// A named engine entry point so one scenario loop covers all four.
struct Engine {
  const char* name;
  StatusOr<core::SliceLineResult> (*run)(const data::IntMatrix&,
                                         const std::vector<double>&,
                                         const core::SliceLineConfig&);
};

constexpr Engine kEngines[] = {
    {"native", core::RunSliceLine},
    {"la", core::RunSliceLineLA},
    {"bestfirst", core::RunSliceLineBestFirst},
    {"exhaustive", core::RunExhaustive},
};

/// Structural sanity of a governed result: the outcome record is
/// well-formed and the top-K is sorted by descending score with finite
/// statistics. Returns "" when fine.
std::string ValidateGovernedResult(const core::SliceLineResult& result,
                                   const char* engine,
                                   const char* scenario) {
  std::ostringstream out;
  out << "[governance/" << scenario << "/" << engine << "] ";
  if (!result.outcome.WellFormed()) {
    out << "malformed RunOutcome: " << result.outcome.Summary();
    return out.str();
  }
  for (size_t i = 0; i < result.top_k.size(); ++i) {
    const core::SliceStats& stats = result.top_k[i].stats;
    if (!std::isfinite(stats.score) || !std::isfinite(stats.error_sum) ||
        !std::isfinite(stats.max_error) || stats.size < 0) {
      out << "non-finite stats in top-K rank " << i;
      return out.str();
    }
    if (i > 0 && result.top_k[i - 1].stats.score < stats.score) {
      out << "top-K not sorted by descending score at rank " << i;
      return out.str();
    }
  }
  return "";
}

}  // namespace

std::string CheckGovernance(const FuzzCase& fuzz_case) {
  Rng rng(fuzz_case.seed ^ 0x676f7665726e616eULL);
  core::SliceLineConfig config = fuzz_case.config;

  for (const Engine& engine : kEngines) {
    // Ungoverned baseline: also tells us whether the case is big enough for
    // the engine to reach a governance poll at all (tiny runs can finish
    // before the first level boundary or strided check).
    auto plain = engine.run(fuzz_case.x0, fuzz_case.errors, config);
    if (!plain.ok()) {
      return std::string("[governance/plain/") + engine.name +
             "] ungoverned run failed: " + plain.status().ToString();
    }
    const bool reaches_poll =
        plain->average_error > 0.0 &&
        (plain->levels.size() >= 2 || plain->total_evaluated >= 128);

    // Scenario 1: pre-cancelled run. Must return gracefully -- never an
    // error status -- and, when the run is big enough to poll governance,
    // with a partial outcome.
    {
      RunContext ctx;
      ctx.cancellation().Cancel();
      config.run_context = &ctx;
      auto result = engine.run(fuzz_case.x0, fuzz_case.errors, config);
      if (!result.ok()) {
        return std::string("[governance/cancel/") + engine.name +
               "] run failed: " + result.status().ToString();
      }
      std::string failure =
          ValidateGovernedResult(*result, engine.name, "cancel");
      if (!failure.empty()) return failure;
      if (reaches_poll && !result->outcome.partial) {
        return std::string("[governance/cancel/") + engine.name +
               "] pre-cancelled run reported a complete outcome";
      }
    }

    // Scenario 2: simulated-time deadline firing after a random number of
    // governance polls. Deterministic: the clock advances a fixed step per
    // query, so the stop point depends only on the drawn deadline.
    {
      const double deadline = 1.0 + static_cast<double>(rng.NextInt(0, 400));
      SimulatedClock clock(0.0, 1.0);
      RunContext ctx;
      ctx.set_clock(&clock);
      ctx.set_deadline_seconds(deadline);
      config.run_context = &ctx;
      auto result = engine.run(fuzz_case.x0, fuzz_case.errors, config);
      if (!result.ok()) {
        return std::string("[governance/deadline/") + engine.name +
               "] run failed: " + result.status().ToString();
      }
      std::string failure =
          ValidateGovernedResult(*result, engine.name, "deadline");
      if (!failure.empty()) return failure;
    }

    // Scenario 3: random memory budget (possibly absurdly small). The run
    // must degrade or stop gracefully, never crash or report nonsense.
    {
      const int64_t limit = rng.NextInt(1, 1 << 20);
      MemoryBudget budget(limit);
      RunContext ctx;
      ctx.set_memory_budget(&budget);
      config.run_context = &ctx;
      auto result = engine.run(fuzz_case.x0, fuzz_case.errors, config);
      if (!result.ok()) {
        return std::string("[governance/budget/") + engine.name +
               "] run failed: " + result.status().ToString();
      }
      std::string failure =
          ValidateGovernedResult(*result, engine.name, "budget");
      if (!failure.empty()) return failure;
    }

    // Scenario 4: governed but unconstrained run -- must complete with the
    // default outcome and match the ungoverned top-K exactly.
    {
      RunContext ctx;
      config.run_context = &ctx;
      auto governed = engine.run(fuzz_case.x0, fuzz_case.errors, config);
      config.run_context = nullptr;
      if (!governed.ok()) {
        return std::string("[governance/noop/") + engine.name +
               "] run failed: " + governed.status().ToString();
      }
      if (governed->outcome.partial) {
        return std::string("[governance/noop/") + engine.name +
               "] unconstrained governed run reported partial: " +
               governed->outcome.Summary();
      }
      if (governed->top_k.size() != plain->top_k.size()) {
        return std::string("[governance/noop/") + engine.name +
               "] governed top-K size differs from ungoverned";
      }
      for (size_t i = 0; i < governed->top_k.size(); ++i) {
        if (governed->top_k[i].stats.score != plain->top_k[i].stats.score) {
          return std::string("[governance/noop/") + engine.name +
                 "] governed top-K score differs from ungoverned at rank " +
                 std::to_string(i);
        }
      }
    }
  }
  config.run_context = nullptr;
  return "";
}

}  // namespace sliceline::testing
