#ifndef SLICELINE_OBS_TRACE_H_
#define SLICELINE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sliceline::obs {

/// One trace event in the Chrome/Perfetto trace-event model. `name` and
/// `category` are required to be string literals (or otherwise outlive the
/// recorder) so the hot path never copies or allocates; the optional
/// `detail` string argument is the one owned field and stays empty on the
/// engine hot paths.
struct TraceEvent {
  const char* name = "";
  const char* category = "sliceline";
  char phase = 'X';       ///< 'X' complete span, 'i' instant event
  int64_t ts_us = 0;      ///< steady-clock timestamp, microseconds
  int64_t dur_us = 0;     ///< span duration ('X' only)
  uint32_t tid = 0;       ///< recording thread
  bool has_arg = false;   ///< emit `args:{"v":arg}`?
  int64_t arg = 0;        ///< span argument (e.g. lattice level)
  uint64_t trace_id = 0;  ///< distributed-trace correlation id (0 = none)
  int64_t parent_span_id = 0;  ///< remote parent span (0 = none)
  std::string detail;     ///< optional string argument (empty = absent)
};

/// Ambient distributed-trace identity for the calling thread. Spans and
/// instants recorded while a context is installed are stamped with its
/// `trace_id`/`parent_span_id`, which is how one job's events are told
/// apart in a process-wide recorder and correlated across processes.
struct TraceContext {
  uint64_t trace_id = 0;
  int64_t parent_span_id = 0;
};

/// The calling thread's current context ({0,0} when none installed).
TraceContext CurrentTraceContext();

/// RAII installer for the thread's trace context; restores the previous
/// context on destruction so nested jobs/requests compose.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// Process-wide trace-span recorder. Spans append to per-thread buffers
/// (one short uncontended lock per event); Export serializes everything to
/// the Chrome tracing / Perfetto JSON format (chrome://tracing loads it
/// directly). Disabled (the default) it costs one relaxed load per span.
/// Per-thread buffers are bounded at kMaxEventsPerThread: a long-running
/// daemon with tracing left on drops the newest events past the cap (and
/// counts them under "obs/trace/dropped_events") instead of growing without
/// limit.
class TraceRecorder {
 public:
  /// Hard cap per (thread, recorder) buffer; ~6 MiB worst case per thread.
  static constexpr size_t kMaxEventsPerThread = 1u << 16;

  static TraceRecorder* Default();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a finished event (called by ScopedSpan / TraceInstant).
  void Record(const TraceEvent& event);

  /// Steady-clock now in microseconds (epoch arbitrary but consistent).
  static int64_t NowMicros();

  /// Small dense id of the calling thread (Chrome traces want integers).
  static uint32_t ThreadId();

  /// Process label used for the exported process_name metadata (worker
  /// session id, "server", ...). Defaults to "sliceline".
  void SetProcessLabel(const std::string& label);
  std::string process_label() const;

  /// Drops all recorded events.
  void Clear();

  /// Number of buffered events (diagnostics/tests).
  size_t EventCount() const;

  /// Removes and returns every buffered event (worker-side span shipping).
  std::vector<TraceEvent> TakeEvents();

  /// Removes and returns the buffered events stamped with `trace_id`,
  /// leaving everything else in place (per-job trace assembly on a shared
  /// recorder).
  std::vector<TraceEvent> TakeEventsForTrace(uint64_t trace_id);

  /// Writes the full buffered trace as strict Chrome-tracing JSON:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void ExportChromeTrace(std::ostream& os) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex buffers_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  mutable std::mutex label_mutex_;
  std::string process_label_ = "sliceline";
};

/// RAII span: records a complete ('X') event covering its lifetime. The
/// enabled check happens once, at construction; a span that starts enabled
/// records even if tracing is flipped off before it ends. The thread's
/// trace context is also captured at construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : ScopedSpan(name, /*has_arg=*/false, 0) {}
  ScopedSpan(const char* name, int64_t arg)
      : ScopedSpan(name, /*has_arg=*/true, arg) {}
  /// Span with a string argument (exported as args.detail).
  ScopedSpan(const char* name, std::string detail);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ScopedSpan(const char* name, bool has_arg, int64_t arg);

  const char* name_;
  int64_t start_us_ = 0;
  bool active_;
  bool has_arg_;
  int64_t arg_;
  std::string detail_;
};

/// Records an instant event (a point-in-time marker, Perfetto 'i' phase),
/// and bumps the counter "events/<category>/<name>" in the default metrics
/// registry so structured events are countable as well as visible on the
/// timeline. Both `category` and `name` must be string literals.
void TraceInstant(const char* category, const char* name);

/// Instant event with a numeric argument (e.g. the level a degradation
/// step fired at).
void TraceInstant(const char* category, const char* name, int64_t arg);

/// Instant event with a string argument (e.g. a worker session id).
void TraceInstant(const char* category, const char* name, std::string detail);

}  // namespace sliceline::obs

// Span macros: `TRACE_SPAN("la/level", L)` places a scoped span. Compiling
// with -DSLICELINE_OBS_DISABLED removes the instrumentation entirely.
#ifdef SLICELINE_OBS_DISABLED
#define SLICELINE_TRACE_CONCAT2(a, b) a##b
#define SLICELINE_TRACE_CONCAT(a, b) SLICELINE_TRACE_CONCAT2(a, b)
#define TRACE_SPAN(...) \
  do {                  \
  } while (false)
#else
#define SLICELINE_TRACE_CONCAT2(a, b) a##b
#define SLICELINE_TRACE_CONCAT(a, b) SLICELINE_TRACE_CONCAT2(a, b)
#define TRACE_SPAN(...)                                          \
  ::sliceline::obs::ScopedSpan SLICELINE_TRACE_CONCAT(           \
      sliceline_trace_span_, __LINE__)(__VA_ARGS__)
#endif

#endif  // SLICELINE_OBS_TRACE_H_
