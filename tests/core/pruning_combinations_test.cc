// Exhaustive correctness sweep over every combination of pruning toggles:
// pruning is an optimization, so every one of the 16 configurations must
// return exactly the oracle's top-K on random inputs. This is the strongest
// guard against a pruning rule accidentally cutting a true top-K slice.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exhaustive.h"
#include "core/sliceline.h"
#include "core/sliceline_la.h"

namespace sliceline::core {
namespace {

struct ComboParam {
  uint64_t seed;
  int mask;  // bit 0: size, 1: score, 2: parents, 3: dedup
};

class PruningComboTest : public ::testing::TestWithParam<ComboParam> {};

TEST_P(PruningComboTest, EveryComboMatchesOracle) {
  const ComboParam& param = GetParam();
  Rng rng(param.seed);
  const int64_t n = 150 + rng.NextInt(0, 150);
  const int m = 4 + rng.NextInt(0, 2);
  data::IntMatrix x0(n, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(3)) + 1;
    }
  }
  std::vector<double> errors(n);
  for (auto& e : errors) e = rng.NextBool(0.4) ? rng.NextDouble() : 0.0;

  SliceLineConfig config;
  config.k = 5;
  config.alpha = 0.9;
  config.min_support = 8;
  config.max_level = 4;  // keep the unpruned combos cheap
  config.prune_size = (param.mask & 1) != 0;
  config.prune_score = (param.mask & 2) != 0;
  config.prune_parents = (param.mask & 4) != 0;
  config.deduplicate = (param.mask & 8) != 0;

  auto oracle = RunExhaustive(x0, errors, config);
  auto native = RunSliceLine(x0, errors, config);
  auto la = RunSliceLineLA(x0, errors, config);
  ASSERT_TRUE(oracle.ok() && native.ok() && la.ok());
  ASSERT_EQ(native->top_k.size(), oracle->top_k.size()) << "mask "
                                                        << param.mask;
  ASSERT_EQ(la->top_k.size(), oracle->top_k.size()) << "mask " << param.mask;
  for (size_t i = 0; i < oracle->top_k.size(); ++i) {
    EXPECT_NEAR(native->top_k[i].stats.score, oracle->top_k[i].stats.score,
                1e-9)
        << "mask " << param.mask << " rank " << i;
    EXPECT_NEAR(la->top_k[i].stats.score, oracle->top_k[i].stats.score, 1e-9)
        << "mask " << param.mask << " rank " << i;
  }
}

std::vector<ComboParam> AllCombos() {
  std::vector<ComboParam> out;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    for (int mask = 0; mask < 16; ++mask) out.push_back({seed, mask});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Masks, PruningComboTest, ::testing::ValuesIn(AllCombos()),
    [](const ::testing::TestParamInfo<ComboParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_mask" +
             std::to_string(info.param.mask);
    });

}  // namespace
}  // namespace sliceline::core
