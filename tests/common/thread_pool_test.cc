#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sliceline {
namespace {

TEST(ThreadPoolTest, InlineModeWithOneThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, CoversAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RangeVariantCoversDisjointRanges) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  pool.ParallelForRange(1234, [&](size_t b, size_t e) {
    total += static_cast<int64_t>(e - b);
  });
  EXPECT_EQ(total.load(), 1234);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedWorkCompletes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { count++; });
  pool.ParallelFor(10, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace sliceline
