#ifndef SLICELINE_ML_LOGISTIC_REGRESSION_H_
#define SLICELINE_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"

namespace sliceline::ml {

/// Multinomial (softmax) logistic regression on sparse features, the
/// "mlogit" of the paper's classification experiments. Trained with
/// full-batch gradient descent plus momentum; adequate for producing the
/// error vectors slice finding consumes.
class LogisticRegression {
 public:
  struct Options {
    int num_classes = 2;
    double learning_rate = 0.5;
    double lambda = 1e-4;      ///< L2 regularization
    int max_iterations = 100;
    double momentum = 0.9;
  };

  /// Fits the model; y holds 0-based class ids in [0, num_classes).
  static StatusOr<LogisticRegression> Fit(const linalg::CsrMatrix& x,
                                          const std::vector<double>& y,
                                          const Options& options);
  static StatusOr<LogisticRegression> Fit(const linalg::CsrMatrix& x,
                                          const std::vector<double>& y) {
    return Fit(x, y, Options());
  }

  /// Predicted class id (argmax probability) per row.
  std::vector<double> Predict(const linalg::CsrMatrix& x) const;

  /// Class-probability matrix, rows aligned with x, one column per class.
  linalg::DenseMatrix PredictProbabilities(const linalg::CsrMatrix& x) const;

  int num_classes() const { return static_cast<int>(weights_.rows()); }

 private:
  LogisticRegression(linalg::DenseMatrix weights, std::vector<double> bias)
      : weights_(std::move(weights)), bias_(std::move(bias)) {}

  linalg::DenseMatrix weights_;  ///< num_classes x num_features
  std::vector<double> bias_;     ///< per class
};

}  // namespace sliceline::ml

#endif  // SLICELINE_ML_LOGISTIC_REGRESSION_H_
