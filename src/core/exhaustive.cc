#include "core/exhaustive.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "core/scoring.h"
#include "core/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sliceline::core {

namespace {

struct DfsState {
  const data::IntMatrix* x0;
  const std::vector<double>* errors;
  const ScoringContext* context;
  int64_t sigma;
  int max_level;
  TopK* topk;
  const RunContext* ctx = nullptr;
  StopReason stop = StopReason::kNone;
  int stopped_depth = 0;  ///< DFS depth when the stop was observed
  int64_t enumerated = 0;
  std::vector<std::pair<int, int32_t>> predicates;
};

constexpr int64_t kGovernanceStride = 64;

/// Extends the current slice with one predicate on each feature >= `feature`,
/// recursing on the filtered row set. Unwinds immediately once a governance
/// stop is observed (polled every kGovernanceStride enumerated slices).
void Dfs(DfsState& state, int feature, const std::vector<int32_t>& rows) {
  const data::IntMatrix& x0 = *state.x0;
  const int m = static_cast<int>(x0.cols());
  if (state.stop != StopReason::kNone) return;
  if (static_cast<int>(state.predicates.size()) >= state.max_level) return;
  for (int f = feature; f < m; ++f) {
    // Partition the candidate rows by this feature's code.
    int32_t dom = 0;
    for (int32_t r : rows) dom = std::max(dom, x0.At(r, f));
    std::vector<std::vector<int32_t>> buckets(static_cast<size_t>(dom));
    for (int32_t r : rows) buckets[x0.At(r, f) - 1].push_back(r);
    for (int32_t code = 1; code <= dom; ++code) {
      const std::vector<int32_t>& subset = buckets[code - 1];
      if (static_cast<int64_t>(subset.size()) < state.sigma) continue;
      double se = 0.0;
      double sm = 0.0;
      for (int32_t r : subset) {
        const double e = (*state.errors)[r];
        se += e;
        if (e > sm) sm = e;
      }
      ++state.enumerated;
      if (state.ctx != nullptr && state.enumerated % kGovernanceStride == 0) {
        state.stop = state.ctx->CheckStop();
        if (state.stop != StopReason::kNone) {
          state.stopped_depth =
              static_cast<int>(state.predicates.size()) + 1;
          return;
        }
      }
      state.predicates.emplace_back(f, code);
      const double score =
          state.context->Score(static_cast<int64_t>(subset.size()), se);
      if (score > 0.0) {
        Slice slice;
        slice.predicates = state.predicates;
        slice.stats = {score, se, sm, static_cast<int64_t>(subset.size())};
        state.topk->Offer(std::move(slice));
      }
      Dfs(state, f + 1, subset);
      state.predicates.pop_back();
      if (state.stop != StopReason::kNone) return;
    }
  }
}

}  // namespace

StatusOr<SliceLineResult> RunExhaustive(const data::IntMatrix& x0,
                                        const std::vector<double>& errors,
                                        const SliceLineConfig& config) {
  if (x0.rows() == 0 || x0.cols() == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int64_t>(errors.size()) != x0.rows()) {
    return Status::InvalidArgument("error vector size mismatch");
  }
  Stopwatch watch;
  TRACE_SPAN("exhaustive/run");
  const int64_t n = x0.rows();
  double total_error = 0.0;
  for (double e : errors) total_error += e;

  SliceLineResult result;
  result.min_support = ResolveMinSupport(config, n);
  result.average_error = total_error / static_cast<double>(n);
  if (total_error <= 0.0) {
    result.total_seconds = watch.ElapsedSeconds();
    return result;
  }
  const ScoringContext context(n, total_error, config.alpha);
  TopK topk(config.k, result.min_support);

  DfsState state;
  state.x0 = &x0;
  state.errors = &errors;
  state.context = &context;
  state.sigma = result.min_support;
  state.max_level = config.max_level > 0
                        ? std::min<int>(config.max_level,
                                        static_cast<int>(x0.cols()))
                        : static_cast<int>(x0.cols());
  state.topk = &topk;
  state.ctx = config.run_context;

  std::vector<int32_t> all_rows(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) all_rows[i] = static_cast<int32_t>(i);
  {
    TRACE_SPAN("exhaustive/dfs");
    Dfs(state, 0, all_rows);
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Default()
        ->GetCounter("exhaustive/enumerated")
        ->Add(state.enumerated);
  }

  if (state.stop != StopReason::kNone) {
    switch (state.stop) {
      case StopReason::kCancelled:
        result.outcome.termination = RunOutcome::Termination::kCancelled;
        break;
      case StopReason::kDeadlineExceeded:
        result.outcome.termination =
            RunOutcome::Termination::kDeadlineExceeded;
        break;
      default:
        result.outcome.termination =
            RunOutcome::Termination::kBudgetExhausted;
        break;
    }
    result.outcome.partial = true;
    result.outcome.stopped_at_level = state.stopped_depth;
  }
  if (config.run_context != nullptr &&
      config.run_context->memory_budget() != nullptr) {
    result.outcome.peak_memory_bytes =
        config.run_context->memory_budget()->peak_bytes();
  }
  result.top_k = topk.Slices();
  result.total_evaluated = state.enumerated;
  result.total_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace sliceline::core
