file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_parallel.dir/bench_fig7b_parallel.cc.o"
  "CMakeFiles/bench_fig7b_parallel.dir/bench_fig7b_parallel.cc.o.d"
  "bench_fig7b_parallel"
  "bench_fig7b_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
