#include "linalg/matrix_io.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/checked_math.h"
#include "common/string_util.h"

namespace sliceline::linalg {

std::string ToMatrixMarketString(const CsrMatrix& matrix) {
  std::ostringstream os;
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << "% written by sliceline\n";
  os << matrix.rows() << " " << matrix.cols() << " " << matrix.nnz() << "\n";
  for (int64_t r = 0; r < matrix.rows(); ++r) {
    const int64_t* cols = matrix.RowCols(r);
    const double* vals = matrix.RowVals(r);
    for (int64_t k = 0; k < matrix.RowNnz(r); ++k) {
      os << (r + 1) << " " << (cols[k] + 1) << " " << vals[k] << "\n";
    }
  }
  return os.str();
}

Status WriteMatrixMarket(const CsrMatrix& matrix, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write '" + path + "'");
  out << ToMatrixMarketString(matrix);
  if (!out) return Status::IoError("error while writing '" + path + "'");
  return Status::OK();
}

StatusOr<CsrMatrix> ParseMatrixMarket(const std::string& content) {
  std::istringstream in(content);
  std::string line;
  // Header.
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty MatrixMarket input");
  }
  if (!StartsWith(line, "%%MatrixMarket")) {
    return Status::InvalidArgument("missing MatrixMarket banner");
  }
  std::string lowered = line;
  for (char& c : lowered) c = static_cast<char>(std::tolower(c));
  if (lowered.find("coordinate") == std::string::npos) {
    return Status::NotImplemented("only coordinate format is supported");
  }
  if (lowered.find("complex") != std::string::npos ||
      lowered.find("pattern") != std::string::npos) {
    return Status::NotImplemented("only real/integer fields are supported");
  }
  const bool symmetric = lowered.find("symmetric") != std::string::npos;

  // Skip comments; read the size line.
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (!trimmed.empty() && trimmed[0] != '%') break;
  }
  std::istringstream size_line{line};
  int64_t rows = -1;
  int64_t cols = -1;
  int64_t nnz = -1;
  size_line >> rows >> cols >> nnz;
  if (rows < 0 || cols < 0 || nnz < 0) {
    return Status::InvalidArgument("malformed size line: '" + line + "'");
  }
  // File-controlled sizes: reject products that would wrap before any
  // reservation happens. For symmetric inputs the mirrored entries can at
  // most double the count, so only the byte product is checked on 2*nnz
  // (the dense-capacity bound applies to the declared nnz alone).
  SLICELINE_RETURN_NOT_OK(
      CheckedElementCount(rows, cols, sizeof(double), nullptr));
  SLICELINE_RETURN_NOT_OK(CheckedNnzReservation(
      nnz, rows, cols, sizeof(int64_t) + sizeof(double)));
  int64_t mirrored_bytes;
  if (symmetric &&
      !CheckedMulInt64(nnz, 2 * static_cast<int64_t>(sizeof(int64_t) +
                                                     sizeof(double)),
                       &mirrored_bytes)) {
    return Status::OutOfRange("symmetric nnz overflows: " +
                              std::to_string(nnz));
  }

  CooBuilder builder(rows, cols);
  int64_t seen = 0;
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '%') continue;
    std::istringstream entry{std::string(trimmed)};
    int64_t r = 0;
    int64_t c = 0;
    double v = 1.0;
    entry >> r >> c;
    if (!(entry >> v)) v = 1.0;
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return Status::OutOfRange("coordinate out of bounds: '" +
                                std::string(trimmed) + "'");
    }
    builder.Add(r - 1, c - 1, v);
    if (symmetric && r != c) builder.Add(c - 1, r - 1, v);
    ++seen;
  }
  if (seen != nnz) {
    return Status::InvalidArgument(
        "expected " + std::to_string(nnz) + " entries, found " +
        std::to_string(seen));
  }
  return builder.Build();
}

StatusOr<CsrMatrix> ReadMatrixMarket(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseMatrixMarket(buf.str());
}

}  // namespace sliceline::linalg
