#ifndef SLICELINE_TESTING_REPLAY_H_
#define SLICELINE_TESTING_REPLAY_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "testing/random_dataset.h"

namespace sliceline::testing {

/// A self-contained failing test case. Shrunk datasets cannot be regenerated
/// from their seed, so the record stores the full feature matrix, error
/// vector, and configuration — everything needed to re-execute the failed
/// check on any build.
struct ReplayRecord {
  std::string check;    ///< "oracle", "kernel", "metamorphic", "determinism"
  std::string failure;  ///< diagnostic produced at capture time
  uint64_t case_index = 0;  ///< position in the fuzz stream
  int kernel_rounds = 0;    ///< only for check == "kernel" (dataset unused)
  FuzzCase fuzz_case;
};

/// Serializes to a stable, human-readable JSON document. Doubles are printed
/// with 17 significant digits so the parse round-trips bit-exactly.
std::string ReplayToJson(const ReplayRecord& record);

/// Parses a document produced by ReplayToJson (strict field set; unknown
/// keys rejected so version skew is loud, not silent).
StatusOr<ReplayRecord> ReplayFromJson(const std::string& json);

/// File convenience wrappers.
Status WriteReplayFile(const std::string& path, const ReplayRecord& record);
StatusOr<ReplayRecord> ReadReplayFile(const std::string& path);

}  // namespace sliceline::testing

#endif  // SLICELINE_TESTING_REPLAY_H_
