#include "linalg/csr_matrix.h"

#include <algorithm>
#include <sstream>

#include "common/checked_math.h"
#include "common/logging.h"

namespace sliceline::linalg {

Status CsrMatrix::Validate(int64_t rows, int64_t cols,
                           const std::vector<int64_t>& row_ptr,
                           const std::vector<int64_t>& col_idx,
                           const std::vector<double>& values,
                           bool check_row_contents) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative CSR shape " +
                                   std::to_string(rows) + "x" +
                                   std::to_string(cols));
  }
  int64_t rows_plus_one;
  if (!CheckedAddInt64(rows, 1, &rows_plus_one)) {
    return Status::OutOfRange("CSR row count overflows");
  }
  SLICELINE_RETURN_NOT_OK(CheckedNnzReservation(
      static_cast<int64_t>(col_idx.size()), rows, cols, sizeof(int64_t)));
  if (static_cast<int64_t>(row_ptr.size()) != rows_plus_one) {
    return Status::InvalidArgument("CSR row_ptr size " +
                                   std::to_string(row_ptr.size()) +
                                   " != rows + 1");
  }
  if (row_ptr.front() != 0) {
    return Status::InvalidArgument("CSR row_ptr must start at 0");
  }
  if (row_ptr.back() != static_cast<int64_t>(col_idx.size())) {
    return Status::InvalidArgument("CSR row_ptr end " +
                                   std::to_string(row_ptr.back()) +
                                   " != nnz " +
                                   std::to_string(col_idx.size()));
  }
  if (col_idx.size() != values.size()) {
    return Status::InvalidArgument("CSR col_idx/values size mismatch");
  }
  if (check_row_contents) {
    for (int64_t r = 0; r < rows; ++r) {
      if (row_ptr[r] > row_ptr[r + 1]) {
        return Status::InvalidArgument("CSR row_ptr not monotone at row " +
                                       std::to_string(r));
      }
      for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        if (col_idx[k] < 0 || col_idx[k] >= cols) {
          return Status::OutOfRange("CSR column index " +
                                    std::to_string(col_idx[k]) +
                                    " out of range at row " +
                                    std::to_string(r));
        }
        if (k > row_ptr[r] && col_idx[k - 1] >= col_idx[k]) {
          return Status::InvalidArgument(
              "CSR column indices not strictly sorted at row " +
              std::to_string(r));
        }
      }
    }
  }
  return Status::OK();
}

int64_t CsrMatrix::HeapBytes() const {
  return static_cast<int64_t>(row_ptr_.capacity() * sizeof(int64_t) +
                              col_idx_.capacity() * sizeof(int64_t) +
                              values_.capacity() * sizeof(double));
}

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
                     std::vector<int64_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  const Status st =
      Validate(rows_, cols_, row_ptr_, col_idx_, values_, /*debug only*/ false);
  SLICELINE_CHECK(st.ok()) << st.ToString();
#ifndef NDEBUG
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      SLICELINE_DCHECK(col_idx_[k] >= 0 && col_idx_[k] < cols_);
      if (k > row_ptr_[r]) SLICELINE_DCHECK(col_idx_[k - 1] < col_idx_[k]);
    }
  }
#endif
  charge_.Resize(HeapBytes());
}

StatusOr<CsrMatrix> CsrMatrix::Create(int64_t rows, int64_t cols,
                                      std::vector<int64_t> row_ptr,
                                      std::vector<int64_t> col_idx,
                                      std::vector<double> values) {
  SLICELINE_RETURN_NOT_OK(Validate(rows, cols, row_ptr, col_idx, values,
                                   /*check_row_contents=*/true));
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix CsrMatrix::Zero(int64_t rows, int64_t cols) {
  return CsrMatrix(rows, cols, std::vector<int64_t>(rows + 1, 0), {}, {});
}

CsrMatrix CsrMatrix::FromDense(const DenseMatrix& dense) {
  std::vector<int64_t> row_ptr;
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  row_ptr.reserve(dense.rows() + 1);
  row_ptr.push_back(0);
  for (int64_t i = 0; i < dense.rows(); ++i) {
    for (int64_t j = 0; j < dense.cols(); ++j) {
      const double v = dense.At(i, j);
      if (v != 0.0) {
        col_idx.push_back(j);
        values.push_back(v);
      }
    }
    row_ptr.push_back(static_cast<int64_t>(col_idx.size()));
  }
  return CsrMatrix(dense.rows(), dense.cols(), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

double CsrMatrix::At(int64_t r, int64_t c) const {
  SLICELINE_DCHECK(r >= 0 && r < rows_);
  SLICELINE_DCHECK(c >= 0 && c < cols_);
  const int64_t* begin = col_idx_.data() + row_ptr_[r];
  const int64_t* end = col_idx_.data() + row_ptr_[r + 1];
  const int64_t* it = std::lower_bound(begin, end, c);
  if (it != end && *it == c) return values_[it - col_idx_.data()];
  return 0.0;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.At(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

bool CsrMatrix::Equals(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
         values_ == other.values_;
}

std::string CsrMatrix::ToString(int max_rows) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " sparse, nnz=" << nnz() << "\n";
  const int64_t r = std::min<int64_t>(rows_, max_rows);
  for (int64_t i = 0; i < r; ++i) {
    os << "  row " << i << ":";
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      os << " (" << col_idx_[k] << "," << values_[k] << ")";
    }
    os << "\n";
  }
  if (r < rows_) os << "  ...\n";
  return os.str();
}

CooBuilder::CooBuilder(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  // Overflow-checked up front: Build() allocates rows + 1 pointers and the
  // CSR constructor validates against rows * cols.
  const Status st = CheckedElementCount(rows, cols, sizeof(double), nullptr);
  SLICELINE_CHECK(st.ok()) << st.ToString();
}

void CooBuilder::Add(int64_t r, int64_t c, double v) {
  SLICELINE_CHECK(r >= 0 && r < rows_);
  SLICELINE_CHECK(c >= 0 && c < cols_);
  entries_.push_back({r, c, v});
}

CsrMatrix CooBuilder::Build() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<int64_t> row_ptr(rows_ + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(entries_.size());
  values.reserve(entries_.size());
  size_t i = 0;
  for (int64_t r = 0; r < rows_; ++r) {
    while (i < entries_.size() && entries_[i].row == r) {
      const int64_t c = entries_[i].col;
      double v = 0.0;
      while (i < entries_.size() && entries_[i].row == r &&
             entries_[i].col == c) {
        v += entries_[i].value;
        ++i;
      }
      if (v != 0.0) {
        col_idx.push_back(c);
        values.push_back(v);
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(col_idx.size());
  }
  entries_.clear();
  entries_.shrink_to_fit();
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace sliceline::linalg
