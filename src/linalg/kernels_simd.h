#ifndef SLICELINE_LINALG_KERNELS_SIMD_H_
#define SLICELINE_LINALG_KERNELS_SIMD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sliceline::linalg {

/// Runtime-dispatched ISA levels of the bit-packed evaluation kernels, in
/// ascending preference. kScalar (portable std::popcount) is always
/// compiled and is the differential reference for every other level; the
/// x86 levels are compiled with per-function target attributes and selected
/// by cpuid at startup; kNeon is the aarch64 build's vector path.
enum class SimdIsa {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Lower-case ISA name ("scalar", "neon", "avx2", "avx512"); stable — it is
/// recorded in RunReport JSON and matched against SLICELINE_FORCE_ISA.
const char* IsaName(SimdIsa isa);

/// Parses an IsaName; returns false on an unknown name.
bool ParseIsaName(const std::string& name, SimdIsa* out);

/// ISAs usable on this host in ascending preference; always starts with
/// kScalar. The differential test rig iterates this to prove every compiled
/// path bit-identical to the scalar reference.
const std::vector<SimdIsa>& AvailableIsas();

/// The ISA the dispatched kernels run at: the forced ISA if ForceIsa was
/// called, else the SLICELINE_FORCE_ISA environment override (when it names
/// an ISA this host supports; unknown or unsupported values fall back to
/// the detected best with a warning), else the best available level.
SimdIsa SelectedIsa();
const char* SelectedIsaName();

/// Overrides dispatch for tests, benchmarks, and the CI ISA matrix. An ISA
/// this host cannot execute is clamped to kScalar. ClearForcedIsa restores
/// environment/auto selection.
void ForceIsa(SimdIsa isa);
void ClearForcedIsa();

/// Masked reduction output: count/sum/max of the error vector over the set
/// rows of a mask. `sum` accumulates in ascending row order (the same order
/// as the scalar kernels and the inverted-list evaluator), which is what
/// keeps top-K results bit-identical across ISA levels and evaluation
/// strategies. `max` is 0 when the mask is empty (errors are >= 0).
struct MaskedStats {
  int64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
};

/// One evaluation candidate: the packed column bitmaps of its predicates.
/// A row belongs to the slice iff it is set in all `len` bitmaps — the
/// bit-packed form of the paper's |X·S^T| == level membership test.
struct CandidateColumns {
  const uint64_t* const* cols = nullptr;
  int32_t len = 0;
};

/// Kernel table of one ISA level. Every entry is bit-exact against the
/// kScalar table on identical inputs: counts are integer popcounts, word
/// outputs are identical bit patterns, and masked sums add in ascending row
/// order at every level (the vector units accelerate the AND/popcount and
/// zero-word skipping, never the float accumulation order).
struct SimdKernels {
  SimdIsa isa;
  /// dst[w] &= src[w] for w in [0, words).
  void (*and_inplace)(uint64_t* dst, const uint64_t* src, int64_t words);
  /// Total set bits of a[0..words).
  int64_t (*popcount)(const uint64_t* a, int64_t words);
  /// Total set bits of a & b without materializing the intersection — the
  /// candidate-count kernel (|X·S^T| == level membership via word-AND +
  /// popcount) for pair candidates.
  int64_t (*and_popcount)(const uint64_t* a, const uint64_t* b,
                          int64_t words);
  /// dst = cols[0] & ... & cols[len-1]; returns popcount(dst). len >= 1;
  /// len == 1 copies. The general candidate-count kernel.
  int64_t (*intersect_columns)(const uint64_t* const* cols, int32_t len,
                               uint64_t* dst, int64_t words);
  /// Accumulates count/sum/max of errors[r] over set rows r of mask into
  /// *acc, in ascending row order. errors must cover [0, words*64); bits are
  /// only read where set, so zero padding words never touch out-of-range
  /// errors. Accumulating into a caller-held running MaskedStats (instead of
  /// returning a fresh one) is what lets the cache-blocked candidate loop
  /// keep ONE continuous add sequence per candidate across word tiles —
  /// sum-of-tile-sums rounds differently, an extended accumulation does not.
  void (*masked_stats)(const uint64_t* mask, int64_t words,
                       const double* errors, MaskedStats* acc);
};

/// Kernel table of a specific level; `isa` must be in AvailableIsas().
const SimdKernels& KernelsFor(SimdIsa isa);

/// Kernel table of SelectedIsa().
const SimdKernels& ActiveKernels();

/// Evaluates `count` candidates over a `words`-word row space with the
/// given kernel table, accumulating into sizes/error_sums/max_errors
/// (+=/max, so outputs must be zero-initialized by the caller). The loop is
/// cache-blocked: candidates x row-words are tiled so the bitmap slices of
/// a candidate tile stay resident in L2 while its candidates intersect
/// them, instead of streaming every full-length bitmap once per candidate.
/// Accumulation order over row tiles is ascending, so results are
/// bit-identical to an unblocked ascending scan.
void EvaluateCandidatesBlocked(const SimdKernels& kernels,
                               const CandidateColumns* candidates,
                               int64_t count, int64_t words,
                               const double* errors, double* sizes,
                               double* error_sums, double* max_errors);

}  // namespace sliceline::linalg

#endif  // SLICELINE_LINALG_KERNELS_SIMD_H_
