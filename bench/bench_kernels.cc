// Microbenchmarks of the linear-algebra kernels the SliceLine enumeration
// is built from: one-hot encoding, colSums, the vector-matrix error
// aggregation e^T X, the S*S^T pair join, the X*S^T evaluation product, and
// table()-based selection-matrix construction. Each kernel is timed over
// repeated runs on the shared harness (bench_util.h); the best wall-clock
// per run and the derived items/s are printed, and recorded through
// bench::Reporter when SLICELINE_BENCH_JSON is set.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "data/generators/generators.h"
#include "data/onehot.h"
#include "linalg/kernels.h"

namespace {

using namespace sliceline;

const data::EncodedDataset& AdultDataset() {
  static const data::EncodedDataset* ds = [] {
    return new data::EncodedDataset(bench::Load("adult", 20000));
  }();
  return *ds;
}

/// Checksum sink: forces each kernel's result to be materialized so the
/// timed call cannot be optimized away; the total is printed at the end.
volatile double g_sink = 0.0;

/// Times `fn` over `reps` runs (after one untimed warm-up) and reports the
/// best run plus items/s at that best. `items` is the per-run work unit
/// (rows or nonzeros), 0 to skip the throughput column.
template <typename Fn>
void RunCase(bench::Reporter& reporter, const std::string& name,
             int64_t items, Fn&& fn) {
  constexpr int kReps = 5;
  g_sink = g_sink + fn();
  double best = 0.0;
  double total = 0.0;
  for (int r = 0; r < kReps; ++r) {
    const double seconds = bench::Timed([&] { g_sink = g_sink + fn(); });
    total += seconds;
    if (r == 0 || seconds < best) best = seconds;
  }
  std::string throughput = "-";
  if (items > 0 && best > 0.0) {
    throughput =
        FormatWithCommas(static_cast<int64_t>(items / best)) + "/s";
  }
  std::printf("  %-28s %12s %12s %18s\n", name.c_str(),
              FormatDouble(best, 6).c_str(),
              FormatDouble(total / kReps, 6).c_str(), throughput.c_str());
  reporter.AddRow(name, {{"best_seconds", best},
                         {"mean_seconds", total / kReps},
                         {"items", static_cast<double>(items)}});
}

linalg::CsrMatrix RandomSliceMatrix(int64_t slices, int64_t cols, int level,
                                    uint64_t seed) {
  Rng rng(seed);
  linalg::CooBuilder builder(slices, cols);
  for (int64_t s = 0; s < slices; ++s) {
    for (int k = 0; k < level; ++k) {
      builder.Add(s, rng.NextUint64(cols), 1.0);
    }
  }
  return builder.Build();
}

}  // namespace

int main() {
  bench::Banner("Linear-Algebra Kernel Microbenchmarks",
                "SliceLine Section 3 kernels (Equations 3-6)");
  bench::Reporter reporter("bench_kernels",
                           "SliceLine Section 3 kernels (Equations 3-6)");

  const data::EncodedDataset& ds = AdultDataset();
  const data::FeatureOffsets offsets = data::ComputeOffsets(ds.x0);
  const linalg::CsrMatrix x = data::OneHotEncode(ds.x0, offsets);
  std::printf("adult: n=%s, m=%lld, onehot cols=%lld, nnz=%s\n\n",
              FormatWithCommas(ds.n()).c_str(),
              static_cast<long long>(ds.m()),
              static_cast<long long>(offsets.total),
              FormatWithCommas(x.nnz()).c_str());
  std::printf("  %-28s %12s %12s %18s\n", "kernel", "best[s]", "mean[s]",
              "throughput");

  RunCase(reporter, "onehot_encode", ds.n(), [&] {
    return static_cast<double>(data::OneHotEncode(ds.x0, offsets).nnz());
  });
  RunCase(reporter, "onehot_encode_via_table", ds.n(), [&] {
    return static_cast<double>(
        data::OneHotEncodeViaTable(ds.x0, offsets).nnz());
  });
  RunCase(reporter, "col_sums", x.nnz(), [&] {
    const std::vector<double> sums = linalg::ColSums(x);
    return sums.empty() ? 0.0 : sums[0];
  });
  // se0 = (e^T X)^T, Equation 4.
  RunCase(reporter, "error_aggregation_etx", x.nnz(), [&] {
    const std::vector<double> se = linalg::TransposeMatVec(x, ds.errors);
    return se.empty() ? 0.0 : se[0];
  });
  for (const int64_t slices : {128, 512, 2048}) {
    const linalg::CsrMatrix s = RandomSliceMatrix(slices, 162, 2, 7);
    RunCase(reporter, "pair_join_sst/" + std::to_string(slices),
            slices * slices, [&] {
              return static_cast<double>(linalg::MultiplyABt(s, s).nnz());
            });
  }
  for (const int64_t slices : {16, 64}) {
    const linalg::CsrMatrix s = RandomSliceMatrix(slices, offsets.total, 2, 11);
    RunCase(reporter, "eval_product_xst/" + std::to_string(slices),
            x.rows() * slices, [&] {
              return static_cast<double>(
                  linalg::FilterEquals(linalg::MultiplyABt(x, s), 2.0).nnz());
            });
  }
  for (const int64_t n : {10000, 100000}) {
    Rng rng(13);
    std::vector<int64_t> rix(n);
    std::vector<int64_t> cix(n);
    for (int64_t i = 0; i < n; ++i) {
      rix[i] = i;
      cix[i] = static_cast<int64_t>(rng.NextUint64(n));
    }
    RunCase(reporter, "table_construction/" + std::to_string(n), n, [&] {
      return static_cast<double>(linalg::Table(rix, cix, n, n).nnz());
    });
  }
  RunCase(reporter, "spgemm_transpose", x.nnz(), [&] {
    return static_cast<double>(linalg::Transpose(x).nnz());
  });

  std::printf("\nchecksum: %s\n", FormatDouble(g_sink, 1).c_str());
  return reporter.Finish();
}
