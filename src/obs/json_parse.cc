#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace sliceline::obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetStringOr(const std::string& key,
                                   const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : fallback;
}

double JsonValue::GetNumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

int64_t JsonValue::GetIntOr(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number())
             ? static_cast<int64_t>(v->number_value())
             : fallback;
}

bool JsonValue::GetBoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : fallback;
}

StatusOr<std::string> JsonValue::RequireString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("missing or non-string field '" + key +
                                   "'");
  }
  return v->string_value();
}

StatusOr<double> JsonValue::RequireNumber(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing or non-numeric field '" + key +
                                   "'");
  }
  return v->number_value();
}

StatusOr<int64_t> JsonValue::RequireInt(const std::string& key) const {
  SLICELINE_ASSIGN_OR_RETURN(const double v, RequireNumber(key));
  return static_cast<int64_t>(v);
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::Number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(items);
  return out;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> m) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(m);
  return out;
}

namespace {

/// Recursive-descent parser over the same grammar as json_validate.cc, but
/// building the value tree. Kept separate from the validator so the
/// zero-allocation validation path stays cheap.
class TreeParser {
 public:
  explicit TreeParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    SLICELINE_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  StatusOr<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    auto out = ParseValueInner();
    --depth_;
    return out;
  }

  StatusOr<JsonValue> ParseValueInner() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        SLICELINE_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        SLICELINE_RETURN_NOT_OK(ParseLiteral("true"));
        return JsonValue::Bool(true);
      case 'f':
        SLICELINE_RETURN_NOT_OK(ParseLiteral("false"));
        return JsonValue::Bool(false);
      case 'n':
        SLICELINE_RETURN_NOT_OK(ParseLiteral("null"));
        return JsonValue::Null();
      default:
        return ParseNumber();
    }
  }

  Status ParseLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("invalid literal, expected ") + literal);
      }
      ++pos_;
    }
    return Status::OK();
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // consume '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::Object(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      SLICELINE_ASSIGN_OR_RETURN(std::string key, ParseString());
      for (const auto& [k, v] : members) {
        if (k == key) return Error("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      SLICELINE_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return JsonValue::Object(std::move(members));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // consume '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::Array(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      SLICELINE_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return JsonValue::Array(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  StatusOr<uint32_t> ParseHex4() {
    uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size() ||
          !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("invalid \\u escape");
      }
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<uint32_t>(c - '0');
      } else {
        cp |= static_cast<uint32_t>((c | 0x20) - 'a' + 10);
      }
    }
    return cp;
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // consume opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        const char e = text_[pos_];
        switch (e) {
          case '"':
            out.push_back('"');
            ++pos_;
            break;
          case '\\':
            out.push_back('\\');
            ++pos_;
            break;
          case '/':
            out.push_back('/');
            ++pos_;
            break;
          case 'b':
            out.push_back('\b');
            ++pos_;
            break;
          case 'f':
            out.push_back('\f');
            ++pos_;
            break;
          case 'n':
            out.push_back('\n');
            ++pos_;
            break;
          case 'r':
            out.push_back('\r');
            ++pos_;
            break;
          case 't':
            out.push_back('\t');
            ++pos_;
            break;
          case 'u': {
            ++pos_;
            SLICELINE_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00-\uDFFF.
              if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired surrogate in \\u escape");
              }
              pos_ += 2;
              SLICELINE_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate in \\u escape");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired surrogate in \\u escape");
            }
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else {
        out.push_back(static_cast<char>(c));
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero must not be followed by digits
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected digits after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected digits in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    return JsonValue::Number(std::strtod(token.c_str(), nullptr));
  }

  static constexpr int kMaxDepth = 512;

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return TreeParser(text).Parse();
}

}  // namespace sliceline::obs
