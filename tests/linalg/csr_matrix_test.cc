#include "linalg/csr_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sliceline::linalg {
namespace {

CsrMatrix Sample() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 0 3 0 ]
  return CsrMatrix(3, 3, {0, 2, 2, 3}, {0, 2, 1}, {1, 2, 3});
}

TEST(CsrMatrixTest, ShapeAndNnz) {
  CsrMatrix m = Sample();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_NEAR(m.density(), 3.0 / 9.0, 1e-12);
}

TEST(CsrMatrixTest, AtLooksUpEntries) {
  CsrMatrix m = Sample();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 3);
}

TEST(CsrMatrixTest, ZeroFactory) {
  CsrMatrix z = CsrMatrix::Zero(4, 5);
  EXPECT_EQ(z.rows(), 4);
  EXPECT_EQ(z.cols(), 5);
  EXPECT_EQ(z.nnz(), 0);
}

TEST(CsrMatrixTest, DenseRoundTrip) {
  CsrMatrix m = Sample();
  CsrMatrix back = CsrMatrix::FromDense(m.ToDense());
  EXPECT_TRUE(m.Equals(back));
}

TEST(CsrMatrixTest, EqualsDetectsDifference) {
  CsrMatrix a = Sample();
  CsrMatrix b(3, 3, {0, 2, 2, 3}, {0, 2, 1}, {1, 2, 4});
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(a.Equals(Sample()));
}

TEST(CooBuilderTest, SumsDuplicatesAndDropsZeros) {
  CooBuilder builder(2, 2);
  builder.Add(0, 1, 2.0);
  builder.Add(0, 1, 3.0);
  builder.Add(1, 0, 1.0);
  builder.Add(1, 0, -1.0);  // cancels to zero -> dropped
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(CooBuilderTest, SortsWithinRows) {
  CooBuilder builder(1, 5);
  builder.Add(0, 4, 1.0);
  builder.Add(0, 0, 1.0);
  builder.Add(0, 2, 1.0);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.col_idx(), (std::vector<int64_t>{0, 2, 4}));
}

TEST(CooBuilderTest, RandomRoundTripThroughDense) {
  Rng rng(3);
  const int64_t rows = 17;
  const int64_t cols = 13;
  DenseMatrix dense(rows, cols);
  CooBuilder builder(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (rng.NextBool(0.2)) {
        double v = rng.NextGaussian();
        dense.At(i, j) = v;
        builder.Add(i, j, v);
      }
    }
  }
  CsrMatrix sparse = builder.Build();
  EXPECT_DOUBLE_EQ(sparse.ToDense().MaxAbsDiff(dense), 0.0);
}

TEST(CsrMatrixTest, RowAccessors) {
  CsrMatrix m = Sample();
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_EQ(m.RowCols(0)[1], 2);
  EXPECT_DOUBLE_EQ(m.RowVals(2)[0], 3.0);
}

}  // namespace
}  // namespace sliceline::linalg
