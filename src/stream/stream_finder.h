#ifndef SLICELINE_STREAM_STREAM_FINDER_H_
#define SLICELINE_STREAM_STREAM_FINDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/slice.h"
#include "data/int_matrix.h"
#include "stream/segment.h"

namespace sliceline::stream {

struct StreamOptions {
  /// Frozen per-feature domains; empty derives them from the base data, in
  /// which case appends must not exercise unseen codes.
  std::vector<int32_t> domains;
  /// Delta segments compact into the base once delta rows exceed this
  /// fraction of the base rows (checked after every append; <= 0 disables).
  double compact_ratio = 0.25;
  /// Find() falls back to a plain full run (recorded in
  /// RunOutcome::stream_full_fallback) when the rows appended since the
  /// last Find exceed this fraction of the dataset (<= 0 disables).
  double full_rerun_fraction = 0.2;
  /// Per-candidate statistics cached across finds; inserts stop (updates
  /// continue) once the cache holds this many slices.
  size_t max_cached_slices = 1 << 20;
};

/// Per-Find incremental decision counters, mirrored into
/// RunOutcome::stream_candidates_{cached,delta,full}.
struct StreamFindStats {
  int64_t candidates_cached = 0;  ///< cached statistic already at prefix n
  int64_t candidates_delta = 0;   ///< cached statistic continued over delta
  int64_t candidates_full = 0;    ///< computed from row 0
  bool full_fallback = false;     ///< took the plain-engine fallback
};

/// Incremental slice finder over an append-only dataset.
///
/// Wraps a SegmentStore and an EvaluatorBackend whose per-candidate
/// statistics (sc, se, sm) are cached together with the row prefix they
/// cover. On the next Find after an append, a candidate is re-scored by
/// *continuing* its cached statistic over just the appended rows — or
/// skipped entirely when no appended row touches its predicate columns —
/// rather than recomputed from scratch. Because every statistic is a single
/// ascending-row float chain (see SegmentStore), the incremental top-K is
/// bit-identical to a from-scratch run on the concatenated data.
///
/// Thread-safe: Append and Find serialize on an internal mutex.
class StreamingSliceFinder {
 public:
  static StatusOr<std::unique_ptr<StreamingSliceFinder>> Create(
      const data::IntMatrix& base_x0, const std::vector<double>& base_errors,
      StreamOptions options = {});

  /// Appends encoded rows with their model errors; compacts segments when
  /// the configured size ratio trips.
  Status Append(const data::IntMatrix& delta_x0,
                const std::vector<double>& delta_errors,
                double ingest_seconds = 0.0);

  /// Runs slice finding over the current dataset. Incremental whenever the
  /// delta since the last Find is small enough; the decision and the
  /// per-candidate re-scoring choices are recorded in the result's
  /// RunOutcome stream fields.
  StatusOr<core::SliceLineResult> Find(const core::SliceLineConfig& config);

  int64_t n() const;
  uint64_t fingerprint() const;
  int64_t compactions() const;
  StreamFindStats last_find_stats() const;

 private:
  struct CachedStats {
    int64_t prefix = 0;  ///< rows [0, prefix) are folded into the chain
    int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };

  /// EvaluatorBackend that continues cached per-candidate chains over the
  /// appended suffix using the bit-packed SIMD kernels. All strategies of
  /// the plain evaluator produce the same float chains, so this backend is
  /// bit-compatible with every eval_strategy.
  class StreamEvaluator : public core::EvaluatorBackend {
   public:
    explicit StreamEvaluator(StreamingSliceFinder* owner) : owner_(owner) {}

    StatusOr<core::EvalResult> Evaluate(
        const core::SliceSet& set,
        const core::SliceLineConfig& config) const override;

    const std::vector<int64_t>& basic_sizes() const override {
      return owner_->store_->basic_sizes();
    }
    const std::vector<double>& basic_error_sums() const override {
      return owner_->store_->basic_error_sums();
    }
    const std::vector<double>& basic_max_errors() const override {
      return owner_->store_->basic_max_errors();
    }
    int64_t n() const override { return owner_->store_->n(); }
    double total_error() const override { return owner_->store_->total_error(); }
    const data::FeatureOffsets& offsets() const override {
      return owner_->store_->offsets();
    }

   private:
    StreamingSliceFinder* owner_;
  };

  explicit StreamingSliceFinder(StreamOptions options)
      : options_(options), evaluator_(this) {}

  StreamOptions options_;
  mutable std::mutex mutex_;
  std::unique_ptr<SegmentStore> store_;
  StreamEvaluator evaluator_;
  std::map<std::vector<int64_t>, CachedStats> stats_cache_;
  int64_t rows_at_last_find_ = 0;
  // Scratch for candidate intersections; reused across Evaluate calls.
  mutable std::vector<uint64_t> scratch_;
  mutable std::vector<const uint64_t*> column_arena_;
  mutable StreamFindStats find_stats_;
  StreamFindStats last_find_stats_;
};

}  // namespace sliceline::stream

#endif  // SLICELINE_STREAM_STREAM_FINDER_H_
