#include "serve/scheduler.h"

#include <unistd.h>

#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "core/sliceline.h"
#include "core/sliceline_la.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace sliceline::serve {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Nonzero fleet-trace id: unique across jobs of one process (the id is in
/// the mix) and overwhelmingly likely unique across processes (pid + the
/// steady clock).
uint64_t NewTraceId(int64_t job_id) {
  const uint64_t mixed = SplitMix64(
      static_cast<uint64_t>(obs::TraceRecorder::NowMicros()) ^
      (static_cast<uint64_t>(::getpid()) << 32) ^
      static_cast<uint64_t>(job_id));
  return mixed == 0 ? 1 : mixed;
}

obs::Histogram* JobSecondsHistogram() {
  // Base 1ms, growth 4x, 12 buckets: ~1ms .. ~70min plus overflow.
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Default()->GetHistogram(
          "serve/job_seconds", obs::HistogramOptions{1e-3, 4.0, 12});
  return histogram;
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobState Job::CurrentState() const {
  std::lock_guard<std::mutex> lock(mutex);
  return state;
}

bool Job::Terminal() const {
  const JobState s = CurrentState();
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

void Job::WaitDone() const {
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [this] {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  });
}

Scheduler::Scheduler(const Options& options)
    : options_(options),
      shared_budget_(options.memory_budget_bytes, options.soft_fraction),
      pool_(static_cast<size_t>(options.workers > 0 ? options.workers : 1),
            /*inline_when_single=*/false) {}

Scheduler::~Scheduler() { DrainAndStop(); }

StatusOr<std::shared_ptr<Job>> Scheduler::Submit(JobSpec spec) {
  auto job = std::make_shared<Job>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      ++rejected_;
      return Status::Cancelled("server is draining; not accepting jobs");
    }
    if (queued_ + running_ >= options_.max_queue) {
      ++rejected_;
      obs::MetricsRegistry::Default()
          ->GetCounter("serve/jobs_rejected")
          ->Increment();
      return Status::ResourceExhausted(
          "job queue full (" + std::to_string(queued_ + running_) + "/" +
          std::to_string(options_.max_queue) + " in flight)");
    }
    job->id = next_job_id_++;
    job->spec = std::move(spec);
    if (options_.fleet_tracing) job->trace_id = NewTraceId(job->id);
    ++queued_;
    ++admitted_;
    jobs_.emplace(job->id, job);
  }
  obs::MetricsRegistry::Default()
      ->GetCounter("serve/jobs_admitted")
      ->Increment();
  UpdateQueueDepthGauge();

  // Wire governance before dispatch so Cancel() on a queued job is visible
  // the moment the worker picks it up.
  if (job->spec.memory_budget_bytes > 0) {
    job->own_budget = std::make_unique<MemoryBudget>(
        job->spec.memory_budget_bytes, options_.soft_fraction);
    job->run_context.set_memory_budget(job->own_budget.get());
  } else {
    job->run_context.set_memory_budget(&shared_budget_);
  }
  job->spec.config.run_context = &job->run_context;

  const double submit_seconds = NowSeconds();
  pool_.Run([this, job, submit_seconds] {
    {
      // Status polls read the timing fields under job->mutex.
      std::lock_guard<std::mutex> lock(job->mutex);
      job->queued_seconds = NowSeconds() - submit_seconds;
    }
    Execute(job);
  });
  return job;
}

void Scheduler::Execute(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state == JobState::kCancelled) {
      // Cancelled while queued; the cancel path already did the
      // bookkeeping, this closure just retires.
      return;
    }
    job->state = JobState::kRunning;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
    ++running_;
  }
  UpdateQueueDepthGauge();

  // The deadline is measured from execution start, not submission: a job
  // should not burn its whole budget sitting in the queue.
  if (job->spec.deadline_seconds > 0.0) {
    job->run_context.SetDeadlineAfterSeconds(job->spec.deadline_seconds);
  }

  const double start = NowSeconds();
  obs::DistObsBundle bundle;
  // The engine runs under the job's trace context so every span it records
  // on this thread is stamped with the job's trace id; the lambda scope
  // closes the serve/job span before BuildJobArtifacts drains the recorder,
  // so the span makes it into the job's own timeline.
  StatusOr<core::SliceLineResult> result =
      [&]() -> StatusOr<core::SliceLineResult> {
    obs::ScopedTraceContext trace_context(
        obs::TraceContext{job->trace_id, 0});
    TRACE_SPAN("serve/job", job->id);
    if (job->spec.engine == "remote") {
      if (!options_.remote_engine) {
        return Status::InvalidArgument(
            "engine 'remote' requested but no remote engine is configured");
      }
      bundle.trace_id = job->trace_id;
      return options_.remote_engine(job->spec.dataset->dataset,
                                    job->spec.config, job->trace_id, &bundle);
    }
    if (job->spec.engine == "la") {
      return core::RunSliceLineLA(job->spec.dataset->dataset,
                                  job->spec.config);
    }
    return core::RunSliceLine(job->spec.dataset->dataset, job->spec.config);
  }();
  const double run_seconds = NowSeconds() - start;
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->run_seconds = run_seconds;
  }
  JobSecondsHistogram()->Observe(run_seconds);

  std::string report_json;
  std::string trace_json;
  if (result.ok()) {
    core::SliceLineResult value = std::move(result).value();
    BuildJobArtifacts(*job, JobState::kDone, Status::OK(), value,
                      std::move(bundle), run_seconds, &report_json,
                      &trace_json);
    FinishJob(job, JobState::kDone, Status::OK(), std::move(value),
              std::move(report_json), std::move(trace_json));
  } else {
    BuildJobArtifacts(*job, JobState::kFailed, result.status(),
                      core::SliceLineResult{}, std::move(bundle), run_seconds,
                      &report_json, &trace_json);
    FinishJob(job, JobState::kFailed, result.status(),
              core::SliceLineResult{}, std::move(report_json),
              std::move(trace_json));
  }
}

void Scheduler::BuildJobArtifacts(const Job& job, JobState terminal,
                                  const Status& error,
                                  const core::SliceLineResult& result,
                                  obs::DistObsBundle bundle,
                                  double run_seconds,
                                  std::string* report_json,
                                  std::string* trace_json) const {
  // -- the RunReport ---------------------------------------------------------
  obs::RunReport report;
  report.set_tool("sliceline_server");
  report.set_engine(job.spec.engine);
  report.set_dataset(job.spec.dataset->name);
  report.SetConfig(job.spec.config);
  if (terminal == JobState::kDone) {
    report.SetResult(result, job.spec.dataset->dataset.feature_names);
  }
  report.AddAnnotation("job_id", std::to_string(job.id));
  report.AddAnnotation("job_state", JobStateName(terminal));
  // Decimal string: the id must survive JSON's double-typed numbers.
  report.AddAnnotation("trace_id", std::to_string(job.trace_id));
  if (terminal == JobState::kFailed) {
    report.AddAnnotation("error", error.message());
  }
  report.AddNumericSection("serve_job", {{"run_seconds", run_seconds}});
  for (const auto& [name, values] : bundle.sections) {
    report.AddNumericSection(
        name, std::vector<std::pair<std::string, double>>(values.begin(),
                                                          values.end()));
  }

  // The server's own spans for this job, drained out of the shared
  // recorder (everything else -- other jobs, requests -- stays buffered).
  std::vector<obs::RemoteSpan> server_spans;
  if (job.trace_id != 0) {
    for (const obs::TraceEvent& event :
         obs::TraceRecorder::Default()->TakeEventsForTrace(job.trace_id)) {
      server_spans.push_back(obs::RemoteSpanFromEvent(event));
    }
  }

  // Per-worker metrics snapshots (counter deltas attributed to this job by
  // the coordinator) plus span/clock accounting, one section per worker.
  int64_t worker_span_count = 0;
  for (size_t w = 0; w < bundle.workers.size(); ++w) {
    const obs::ProcessObs& worker = bundle.workers[w];
    worker_span_count += static_cast<int64_t>(worker.spans.size());
    std::vector<std::pair<std::string, double>> values = worker.counters;
    values.emplace_back("os_pid", static_cast<double>(worker.os_pid));
    values.emplace_back("clock_offset_us",
                        static_cast<double>(worker.clock_offset_us));
    values.emplace_back("spans", static_cast<double>(worker.spans.size()));
    report.AddNumericSection("worker_" + std::to_string(w),
                             std::move(values));
    report.AddAnnotation("worker_" + std::to_string(w) + "_label",
                         worker.label);
  }
  report.AddNumericSection(
      "dist_trace",
      {{"server_spans", static_cast<double>(server_spans.size())},
       {"worker_spans", static_cast<double>(worker_span_count)},
       {"processes", static_cast<double>(1 + bundle.workers.size())}});

  std::ostringstream report_os;
  report.WriteJson(report_os);
  *report_json = report_os.str();

  // -- the merged timeline ---------------------------------------------------
  std::vector<obs::ProcessTrack> tracks;
  obs::ProcessTrack server_track;
  server_track.label = obs::TraceRecorder::Default()->process_label();
  server_track.spans = std::move(server_spans);
  tracks.push_back(std::move(server_track));
  for (obs::ProcessObs& worker : bundle.workers) {
    obs::ProcessTrack track;
    track.label = worker.label;
    track.clock_offset_us = worker.clock_offset_us;
    track.spans = std::move(worker.spans);
    tracks.push_back(std::move(track));
  }
  std::ostringstream trace_os;
  obs::WriteMergedChromeTrace(tracks, trace_os);
  *trace_json = trace_os.str();
}

void Scheduler::FinishJob(const std::shared_ptr<Job>& job, JobState terminal,
                          Status error, core::SliceLineResult result,
                          std::string report_json, std::string trace_json) {
  {
    // Both locks (scheduler first, then job) so the terminal state and the
    // scheduler counters become visible atomically: a waiter released by
    // WaitDone must see the updated counters, and a drained scheduler must
    // only hold terminal jobs. No other path nests these two mutexes in the
    // opposite order.
    std::lock_guard<std::mutex> scheduler_lock(mutex_);
    std::lock_guard<std::mutex> job_lock(job->mutex);
    job->error = std::move(error);
    job->result = std::move(result);
    job->report_json = std::move(report_json);
    job->trace_json = std::move(trace_json);
    job->state = terminal;
    --running_;
    if (terminal == JobState::kDone) {
      ++completed_;
    } else {
      ++failed_;
    }
  }
  job->cv.notify_all();
  obs::MetricsRegistry::Default()
      ->GetCounter(terminal == JobState::kDone ? "serve/jobs_completed"
                                               : "serve/jobs_failed")
      ->Increment();
  drain_cv_.notify_all();
  UpdateQueueDepthGauge();
}

std::shared_ptr<Job> Scheduler::Find(int64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

StatusOr<JobState> Scheduler::Cancel(int64_t id) {
  std::shared_ptr<Job> job = Find(id);
  if (job == nullptr) {
    return Status::NotFound("unknown job " + std::to_string(id));
  }
  bool cancelled_while_queued = false;
  JobState state_after;
  {
    // Same lock order as FinishJob (scheduler, then job) so the state flip
    // and the queued_/cancelled_ counters land atomically.
    std::lock_guard<std::mutex> scheduler_lock(mutex_);
    std::lock_guard<std::mutex> job_lock(job->mutex);
    if (job->state == JobState::kQueued) {
      job->state = JobState::kCancelled;
      cancelled_while_queued = true;
      --queued_;
      ++cancelled_;
    } else if (job->state == JobState::kRunning) {
      // Cooperative: the engine notices at the next governance boundary
      // and returns best-so-far results with outcome kCancelled.
      job->run_context.cancellation().Cancel();
    }
    state_after = job->state;
  }
  if (cancelled_while_queued) {
    job->cv.notify_all();
    obs::MetricsRegistry::Default()
        ->GetCounter("serve/jobs_cancelled")
        ->Increment();
    drain_cv_.notify_all();
    UpdateQueueDepthGauge();
  }
  return state_after;
}

void Scheduler::DrainAndStop() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  drain_cv_.wait(lock, [this] { return queued_ + running_ == 0; });
}

bool Scheduler::HasActiveJobsForDataset(const std::string& name) const {
  // Snapshot under the scheduler lock, inspect job state outside it: the
  // per-job mutex inside Terminal() must never nest under mutex_.
  std::vector<std::shared_ptr<Job>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) snapshot.push_back(job);
  }
  for (const std::shared_ptr<Job>& job : snapshot) {
    if (job->spec.dataset != nullptr && job->spec.dataset->name == name &&
        !job->Terminal()) {
      return true;
    }
  }
  return false;
}

int64_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

int64_t Scheduler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

int64_t Scheduler::jobs_admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

int64_t Scheduler::jobs_rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

int64_t Scheduler::jobs_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

int64_t Scheduler::jobs_failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

int64_t Scheduler::jobs_cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

void Scheduler::UpdateQueueDepthGauge() const {
  int64_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    depth = queued_;
  }
  obs::MetricsRegistry::Default()
      ->GetGauge("serve/queue_depth")
      ->Set(static_cast<double>(depth));
}

}  // namespace sliceline::serve
