#ifndef SLICELINE_DIST_PARTITION_H_
#define SLICELINE_DIST_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/int_matrix.h"

namespace sliceline::dist {

/// A contiguous row shard [begin, end) of the input.
struct RowRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// Splits [0, n) into `workers` near-equal contiguous shards (the row
/// partitioning of the paper's data-parallel execution, where X is scanned
/// data-locally on every node).
std::vector<RowRange> PartitionRows(int64_t n, int workers);

/// Materializes a shard of x0 and its aligned error sub-vector.
struct Shard {
  data::IntMatrix x0;
  std::vector<double> errors;
  RowRange range;
};

Shard MakeShard(const data::IntMatrix& x0, const std::vector<double>& errors,
                RowRange range);

}  // namespace sliceline::dist

#endif  // SLICELINE_DIST_PARTITION_H_
