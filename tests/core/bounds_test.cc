#include "core/bounds.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sliceline::core {
namespace {

TEST(ParentBoundsTest, AccumulatesMinima) {
  ParentBounds b;
  b.AddParent(100, 50.0, 5.0);
  b.AddParent(80, 60.0, 4.0);
  b.AddParent(120, 40.0, 6.0);
  EXPECT_EQ(b.size_ub, 80);
  EXPECT_DOUBLE_EQ(b.error_ub, 40.0);
  EXPECT_DOUBLE_EQ(b.max_error_ub, 4.0);
  EXPECT_EQ(b.parents, 3);
}

TEST(UpperBoundTest, NoParentsIsMinusInfinity) {
  ScoringContext ctx(100, 10.0, 0.9);
  EXPECT_EQ(UpperBoundScore(ctx, 5, ParentBounds{}),
            ScoringContext::kMinusInfinity);
}

TEST(UpperBoundTest, InfeasibleIntervalIsMinusInfinity) {
  ScoringContext ctx(100, 10.0, 0.9);
  ParentBounds b;
  b.AddParent(4, 3.0, 1.0);  // size_ub = 4 < sigma = 5
  EXPECT_EQ(UpperBoundScore(ctx, 5, b), ScoringContext::kMinusInfinity);
}

TEST(UpperBoundTest, ZeroErrorBoundIsNonPositive) {
  ScoringContext ctx(100, 10.0, 0.9);
  ParentBounds b;
  b.AddParent(50, 0.0, 0.0);
  EXPECT_LE(UpperBoundScore(ctx, 5, b), 0.0);
}

/// Brute-force maximum of the bound function over every integer size in
/// [sigma, size_ub]; the closed-form interesting-points evaluation must
/// dominate (be >=) it and equal it up to the continuous/integer gap.
double BruteForceBound(const ScoringContext& ctx, int64_t sigma,
                       const ParentBounds& b) {
  double best = ScoringContext::kMinusInfinity;
  for (int64_t s = sigma; s <= b.size_ub; ++s) {
    const double se = std::min(b.error_ub, s * b.max_error_ub);
    best = std::max(best, ctx.Score(s, se));
  }
  return best;
}

TEST(UpperBoundTest, MatchesBruteForceOverSizes) {
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    const int64_t n = 50 + rng.NextInt(0, 400);
    const double total = rng.NextDouble(1.0, 100.0);
    const double alpha = rng.NextDouble(0.05, 1.0);
    ScoringContext ctx(n, total, alpha);
    const int64_t sigma = 1 + rng.NextInt(0, 20);
    ParentBounds b;
    const int parents = 1 + static_cast<int>(rng.NextUint64(3));
    for (int p = 0; p < parents; ++p) {
      const int64_t size = sigma + rng.NextInt(0, n - sigma);
      const double sm = rng.NextDouble(0.0, 3.0);
      const double se = rng.NextDouble(0.0, sm * size + 1.0);
      b.AddParent(size, se, sm);
    }
    const double closed = UpperBoundScore(ctx, sigma, b);
    const double brute = BruteForceBound(ctx, sigma, b);
    // The closed form optimizes over real-valued s, so it may exceed the
    // integer brute force slightly, but must never be smaller.
    EXPECT_GE(closed + 1e-9, brute)
        << "trial " << trial << " n=" << n << " alpha=" << alpha;
  }
}

TEST(UpperBoundTest, DominatesAllFeasibleChildren) {
  // Any child slice with size <= size_ub, se <= min(error_ub, size * sm_ub)
  // must score at most the bound.
  Rng rng(43);
  for (int trial = 0; trial < 300; ++trial) {
    const int64_t n = 100 + rng.NextInt(0, 900);
    ScoringContext ctx(n, rng.NextDouble(5.0, 50.0),
                       rng.NextDouble(0.1, 1.0));
    const int64_t sigma = 2 + rng.NextInt(0, 30);
    ParentBounds b;
    b.AddParent(sigma + rng.NextInt(0, 200), rng.NextDouble(0.0, 40.0),
                rng.NextDouble(0.0, 2.0));
    const double bound = UpperBoundScore(ctx, sigma, b);
    for (int child = 0; child < 50; ++child) {
      if (b.size_ub < sigma) break;
      const int64_t size = sigma + rng.NextInt(0, b.size_ub - sigma);
      const double max_se =
          std::min(b.error_ub, static_cast<double>(size) * b.max_error_ub);
      const double se = rng.NextDouble(0.0, std::max(max_se, 1e-12));
      EXPECT_LE(ctx.Score(size, se), bound + 1e-9)
          << "trial " << trial << " size " << size << " se " << se;
    }
  }
}

TEST(UpperBoundTest, TighterParentsGiveTighterBound) {
  ScoringContext ctx(1000, 100.0, 0.9);
  ParentBounds loose;
  loose.AddParent(500, 80.0, 2.0);
  ParentBounds tight = loose;
  tight.AddParent(300, 40.0, 1.0);
  EXPECT_LE(UpperBoundScore(ctx, 10, tight),
            UpperBoundScore(ctx, 10, loose) + 1e-12);
}

}  // namespace
}  // namespace sliceline::core
