#include "baseline/slicefinder.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sliceline.h"
#include "data/generators/generators.h"

namespace sliceline::baseline {
namespace {

TEST(SliceFinderTest, FindsPlantedProblematicSlice) {
  data::DatasetOptions opts;
  opts.rows = 2000;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceFinderConfig config;
  config.k = 4;
  config.effect_size_min = 0.2;
  auto result = RunSliceFinder(ds.x0, ds.errors, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->slices.empty());
  EXPECT_GT(result->evaluated, 0);
  // Reported slices satisfy the support constraint.
  for (const core::Slice& slice : result->slices) {
    EXPECT_GE(slice.stats.size, 32);
    EXPECT_GT(slice.stats.score, 0.0);  // effect size
  }
}

TEST(SliceFinderTest, DominanceSuppressesRefinements) {
  data::DatasetOptions opts;
  opts.rows = 2000;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  SliceFinderConfig config;
  config.k = 50;  // don't terminate early
  config.effect_size_min = 0.15;
  config.max_level = 3;
  auto result = RunSliceFinder(ds.x0, ds.errors, config);
  ASSERT_TRUE(result.ok());
  // No reported slice is a refinement of an earlier reported slice.
  for (size_t i = 0; i < result->slices.size(); ++i) {
    for (size_t j = i + 1; j < result->slices.size(); ++j) {
      const auto& coarse = result->slices[i].predicates;
      const auto& fine = result->slices[j].predicates;
      if (coarse.size() >= fine.size()) continue;
      bool contains_all = true;
      for (const auto& p : coarse) {
        contains_all &=
            std::find(fine.begin(), fine.end(), p) != fine.end();
      }
      EXPECT_FALSE(contains_all)
          << "slice " << j << " dominated by slice " << i;
    }
  }
}

TEST(SliceFinderTest, HeuristicCanMissBestSlice) {
  // Construct data where a level-2 conjunction is catastrophic but each of
  // its level-1 projections is mildly bad: SliceFinder's level-wise
  // termination reports K weaker level-1 slices and never reaches the true
  // worst slice, while SliceLine finds it. (This is the paper's motivating
  // exactness gap; if the heuristic happens to find it on other data the
  // test below would need different data, so we build it adversarially.)
  Rng rng(7);
  const int64_t n = 4000;
  data::IntMatrix x0(n, 6);
  std::vector<double> errors(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < 6; ++j) {
      x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(4)) + 1;
    }
    // Mild noise everywhere.
    errors[i] = rng.NextBool(0.08) ? 1.0 : 0.0;
    // A few mildly-bad level-1 groups that pass the effect-size test.
    if (x0.At(i, 4) == 1 && rng.NextBool(0.15)) errors[i] = 1.0;
    if (x0.At(i, 5) == 2 && rng.NextBool(0.15)) errors[i] = 1.0;
    // Catastrophic hidden conjunction.
    if (x0.At(i, 0) == 1 && x0.At(i, 1) == 1) errors[i] = 1.0;
  }

  SliceFinderConfig heuristic;
  heuristic.k = 2;
  heuristic.effect_size_min = 0.25;
  auto baseline = RunSliceFinder(x0, errors, heuristic);
  ASSERT_TRUE(baseline.ok());

  core::SliceLineConfig exact;
  exact.k = 1;
  exact.alpha = 0.95;
  auto sliceline = core::RunSliceLine(x0, errors, exact);
  ASSERT_TRUE(sliceline.ok());
  ASSERT_FALSE(sliceline->top_k.empty());
  // SliceLine's top slice is the planted conjunction.
  const auto& top = sliceline->top_k[0].predicates;
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (std::pair<int, int32_t>{0, 1}));
  EXPECT_EQ(top[1], (std::pair<int, int32_t>{1, 1}));
  // The heuristic terminated at level 1 with other slices.
  ASSERT_GE(baseline->slices.size(), 1u);
  for (const core::Slice& slice : baseline->slices) {
    EXPECT_NE(slice.predicates, top);
  }
}

TEST(SliceFinderTest, ValidatesInputs) {
  data::IntMatrix x0(10, 2, 1);
  std::vector<double> errors(5, 0.1);
  EXPECT_FALSE(RunSliceFinder(x0, errors, SliceFinderConfig()).ok());
  EXPECT_FALSE(
      RunSliceFinder(data::IntMatrix(), {}, SliceFinderConfig()).ok());
  SliceFinderConfig bad;
  bad.k = 0;
  std::vector<double> ok_errors(10, 0.1);
  EXPECT_FALSE(RunSliceFinder(x0, ok_errors, bad).ok());
}

TEST(SliceFinderTest, NoSignalsMeansNoSlices) {
  data::IntMatrix x0(500, 3);
  Rng rng(3);
  for (int64_t i = 0; i < 500; ++i) {
    for (int j = 0; j < 3; ++j) {
      x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(3)) + 1;
    }
  }
  std::vector<double> errors(500, 0.25);  // perfectly uniform errors
  SliceFinderConfig config;
  config.max_level = 2;
  auto result = RunSliceFinder(x0, errors, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->slices.empty());
}

}  // namespace
}  // namespace sliceline::baseline
