// Reproduces Figure 4 (Dataset Slice Enumeration): per-level candidate and
// valid slice counts with all pruning enabled, for Adult (full depth,
// expecting early termination) and the correlated datasets Covtype, KDD98,
// and USCensus (capped at ceil(L) = 3 or 4 as in the paper).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"

namespace {

void RunOne(const sliceline::data::EncodedDataset& ds, int max_level) {
  using namespace sliceline;
  core::SliceLineConfig config;
  config.alpha = 0.95;
  config.k = 4;
  config.max_level = max_level;
  auto result = core::RunSliceLine(ds, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", ds.name.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s (n=%s, m=%lld, ceil(L)=%s):\n", ds.name.c_str(),
              FormatWithCommas(ds.n()).c_str(),
              static_cast<long long>(ds.m()),
              max_level > 0 ? std::to_string(max_level).c_str() : "inf");
  std::printf("  %-8s %14s %14s %10s\n", "level", "candidates", "valid",
              "time[s]");
  for (const core::LevelStats& level : result->levels) {
    std::printf("  %-8d %14s %14s %10s\n", level.level,
                FormatWithCommas(level.candidates).c_str(),
                FormatWithCommas(level.valid).c_str(),
                FormatDouble(level.seconds, 3).c_str());
  }
  std::printf("  terminated after level %d of %lld; total %s slices, %ss\n\n",
              result->levels.empty() ? 0 : result->levels.back().level,
              static_cast<long long>(ds.m()),
              FormatWithCommas(result->total_evaluated).c_str(),
              FormatDouble(result->total_seconds, 3).c_str());
}

}  // namespace

int main() {
  using namespace sliceline;
  bench::Banner("Figure 4: Dataset Slice Enumeration (# slices per level)",
                "SliceLine Figure 4(a) Adult, 4(b) Covtype/KDD98/USCensus");
  RunOne(bench::Load("adult"), 0);       // Fig 4(a): full depth
  RunOne(bench::Load("covtype"), 4);     // Fig 4(b)
  RunOne(bench::Load("kdd98"), 3);
  RunOne(bench::Load("uscensus"), 3);
  std::printf(
      "Expected shape (paper): Adult terminates early well before m;\n"
      "correlated datasets keep producing large valid slices at depth,\n"
      "and candidates stay close to valid counts (effective pruning).\n");
  return 0;
}
