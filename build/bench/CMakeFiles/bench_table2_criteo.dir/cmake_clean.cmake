file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_criteo.dir/bench_table2_criteo.cc.o"
  "CMakeFiles/bench_table2_criteo.dir/bench_table2_criteo.cc.o.d"
  "bench_table2_criteo"
  "bench_table2_criteo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_criteo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
