#include "testing/random_dataset.h"

#include <algorithm>
#include <cmath>

#include "data/generators/planted_slices.h"

namespace sliceline::testing {
namespace {

enum Profile {
  kUniform = 0,        // iid uniform codes, mixed-magnitude errors
  kZipfSkewed,         // heavy-tailed category frequencies
  kPlantedSlice,       // 1-2 planted conjunctions with elevated error
  kConstantColumns,    // some columns hold a single code (domain 1)
  kAllZeroErrors,      // perfect model: every engine must return nothing
  kUniformErrors,      // identical error everywhere: no slice scores > 0
  kHeavyTies,          // binary errors + duplicated columns => massive ties
  kSingleRowSlices,    // unique codes so some slices match exactly one row
  kTinyInput,          // n in [1, 8]: degenerate shapes, sigma >= n cases
  kDuplicateRows,      // few distinct rows replicated many times
  kNumProfiles,
};

const char* kProfileNames[] = {
    "uniform",        "zipf-skewed",   "planted-slice", "constant-columns",
    "all-zero-errors", "uniform-errors", "heavy-ties",    "single-row-slices",
    "tiny-input",     "duplicate-rows",
};

}  // namespace

RandomDatasetGenerator::RandomDatasetGenerator(uint64_t seed,
                                               RandomDatasetOptions options)
    : rng_(seed), options_(options) {}

int RandomDatasetGenerator::num_profiles() { return kNumProfiles; }

const char* RandomDatasetGenerator::ProfileName(int profile) {
  return profile >= 0 && profile < kNumProfiles ? kProfileNames[profile]
                                                : "unknown";
}

FuzzCase RandomDatasetGenerator::Next() {
  return NextWithProfile(static_cast<int>(rng_.NextUint64(kNumProfiles)));
}

FuzzCase RandomDatasetGenerator::NextWithProfile(int profile) {
  // Each case runs on its own derived seed so it can be regenerated without
  // replaying the whole stream.
  const uint64_t case_seed = rng_.Next();
  return RegenerateCase(case_seed, profile, options_);
}

FuzzCase RandomDatasetGenerator::Generate(int profile, uint64_t recorded_seed) {
  FuzzCase fuzz_case;
  fuzz_case.seed = recorded_seed;
  fuzz_case.profile = ProfileName(profile);
  FillFeatures(&fuzz_case, profile);
  FillErrors(&fuzz_case, profile);
  SampleConfig(&fuzz_case);
  return fuzz_case;
}

FuzzCase RegenerateCase(uint64_t seed, int profile,
                        const RandomDatasetOptions& options) {
  RandomDatasetGenerator gen(seed, options);
  return gen.Generate(profile, seed);
}

void RandomDatasetGenerator::FillFeatures(FuzzCase* fuzz_case, int profile) {
  const RandomDatasetOptions& o = options_;
  int64_t n = rng_.NextInt(o.min_rows, o.max_rows);
  int m = static_cast<int>(rng_.NextInt(o.min_cols, o.max_cols));
  if (profile == kTinyInput) n = rng_.NextInt(1, 8);

  data::IntMatrix x0(n, m);
  std::vector<int32_t> domains(m);
  for (int j = 0; j < m; ++j) {
    domains[j] = static_cast<int32_t>(rng_.NextInt(1, o.max_domain));
  }

  switch (profile) {
    case kZipfSkewed: {
      const double exponent = rng_.NextDouble(0.8, 2.5);
      for (int j = 0; j < m; ++j) {
        data::FillCategorical(x0, j, domains[j], exponent, rng_);
      }
      break;
    }
    case kConstantColumns: {
      for (int j = 0; j < m; ++j) {
        if (rng_.NextBool(0.5)) {
          const int32_t code = static_cast<int32_t>(rng_.NextInt(1, domains[j]));
          for (int64_t i = 0; i < n; ++i) x0.At(i, j) = code;
        } else {
          data::FillCategorical(x0, j, domains[j], 0.0, rng_);
        }
      }
      break;
    }
    case kHeavyTies: {
      // Duplicate one source column into all others so many conjunctions
      // cover identical row sets (maximal score ties).
      data::FillCategorical(x0, 0, std::max<int32_t>(2, domains[0]), 0.0, rng_);
      for (int64_t i = 0; i < n; ++i) {
        for (int j = 1; j < m; ++j) x0.At(i, j) = x0.At(i, 0);
      }
      break;
    }
    case kSingleRowSlices: {
      for (int j = 0; j < m; ++j) {
        data::FillCategorical(x0, j, domains[j], 0.0, rng_);
      }
      // Give a handful of rows a private code in column 0 so the slice
      // {f0 = code} has support exactly 1.
      const int64_t specials = std::min<int64_t>(n, rng_.NextInt(1, 3));
      for (int64_t s = 0; s < specials; ++s) {
        const int64_t row = rng_.NextInt(0, n - 1);
        x0.At(row, 0) = domains[0] + 1 + static_cast<int32_t>(s);
      }
      break;
    }
    case kDuplicateRows: {
      const int64_t distinct = std::max<int64_t>(1, rng_.NextInt(1, 6));
      data::IntMatrix proto(distinct, m);
      for (int j = 0; j < m; ++j) {
        data::FillCategorical(proto, j, domains[j], 0.0, rng_);
      }
      for (int64_t i = 0; i < n; ++i) {
        const int64_t src = rng_.NextInt(0, distinct - 1);
        for (int j = 0; j < m; ++j) x0.At(i, j) = proto.At(src, j);
      }
      break;
    }
    default: {
      for (int j = 0; j < m; ++j) {
        data::FillCategorical(x0, j, domains[j], 0.0, rng_);
      }
      break;
    }
  }
  fuzz_case->x0 = std::move(x0);
}

void RandomDatasetGenerator::FillErrors(FuzzCase* fuzz_case, int profile) {
  const int64_t n = fuzz_case->x0.rows();
  const int m = static_cast<int>(fuzz_case->x0.cols());
  std::vector<double> errors(n, 0.0);

  switch (profile) {
    case kAllZeroErrors:
      break;
    case kUniformErrors: {
      const double level = rng_.NextDouble(0.05, 1.0);
      std::fill(errors.begin(), errors.end(), level);
      break;
    }
    case kHeavyTies: {
      // Binary errors keyed off the shared column value: identical row sets
      // get identical error sums, maximizing tie pressure on top-K.
      const int32_t bad = static_cast<int32_t>(
          rng_.NextInt(1, std::max<int32_t>(2, fuzz_case->x0.ColMaxs()[0])));
      for (int64_t i = 0; i < n; ++i) {
        errors[i] = fuzz_case->x0.At(i, 0) == bad ? 1.0 : 0.0;
      }
      break;
    }
    case kPlantedSlice: {
      const int planted = static_cast<int>(rng_.NextInt(1, 2));
      std::vector<std::vector<std::pair<int, int32_t>>> slices;
      const std::vector<int32_t> domains = fuzz_case->x0.ColMaxs();
      for (int s = 0; s < planted; ++s) {
        const int arity = static_cast<int>(rng_.NextInt(1, std::min(2, m)));
        std::vector<std::pair<int, int32_t>> predicates;
        for (int a = 0; a < arity; ++a) {
          const int feature = static_cast<int>(rng_.NextInt(0, m - 1));
          predicates.emplace_back(
              feature, static_cast<int32_t>(rng_.NextInt(1, domains[feature])));
        }
        slices.push_back(std::move(predicates));
      }
      const double base = rng_.NextDouble(0.02, 0.15);
      const double lifted = rng_.NextDouble(0.4, 0.9);
      for (int64_t i = 0; i < n; ++i) {
        bool in_planted = false;
        for (const auto& predicates : slices) {
          bool all = true;
          for (const auto& [f, c] : predicates) {
            all &= fuzz_case->x0.At(i, f) == c;
          }
          in_planted |= all;
        }
        errors[i] = rng_.NextBool(in_planted ? lifted : base) ? 1.0 : 0.0;
      }
      break;
    }
    default: {
      // Mixed-magnitude continuous errors with a random zero fraction.
      const double zero_fraction = rng_.NextDouble(0.0, 0.8);
      for (int64_t i = 0; i < n; ++i) {
        if (rng_.NextBool(zero_fraction)) continue;
        double e = rng_.NextDouble();
        if (rng_.NextBool(0.1)) e *= 100.0;  // occasional outlier
        errors[i] = e;
      }
      break;
    }
  }
  fuzz_case->errors = std::move(errors);
}

void RandomDatasetGenerator::SampleConfig(FuzzCase* fuzz_case) {
  core::SliceLineConfig config;
  const int64_t n = fuzz_case->x0.rows();
  config.k = static_cast<int>(rng_.NextInt(1, 8));
  static constexpr double kAlphas[] = {0.3, 0.5, 0.8, 0.95, 1.0};
  config.alpha = kAlphas[rng_.NextUint64(5)];
  // Explicit sigma: small enough that slices exist, occasionally > n to
  // exercise the infeasible path.
  config.min_support =
      rng_.NextBool(0.1) ? n + 1 : std::max<int64_t>(1, rng_.NextInt(1, std::max<int64_t>(1, n / 4)));
  config.max_level = rng_.NextBool(0.5) ? 0 : static_cast<int>(rng_.NextInt(1, 4));
  // Exactness must hold under every pruning combination.
  config.prune_size = rng_.NextBool(0.8);
  config.prune_score = rng_.NextBool(0.8);
  config.prune_parents = rng_.NextBool(0.8);
  config.deduplicate = rng_.NextBool(0.9);
  static constexpr core::SliceLineConfig::EvalStrategy kStrategies[] = {
      core::SliceLineConfig::EvalStrategy::kIndex,
      core::SliceLineConfig::EvalStrategy::kScanBlock,
      core::SliceLineConfig::EvalStrategy::kBitset,
  };
  config.eval_strategy = kStrategies[rng_.NextUint64(3)];
  config.eval_block_size = static_cast<int>(rng_.NextInt(1, 32));
  config.parallel = rng_.NextBool(0.5);
  fuzz_case->config = config;
}

}  // namespace sliceline::testing
