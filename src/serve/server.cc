#include "serve/server.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace sliceline::serve {

namespace {

constexpr int kPollMillis = 200;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Histogram* RequestSecondsHistogram() {
  // Base 100us, growth 4x, 12 buckets: ~100us .. ~7min plus overflow.
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Default()->GetHistogram(
          "serve/request_seconds", obs::HistogramOptions{1e-4, 4.0, 12});
  return histogram;
}

/// Registers every serve metric up front so /metrics exposes the full
/// family set (queue depth, cache hit/miss, latency histogram) from the
/// first scrape, not only after the first event of each kind.
void PreregisterServeMetrics() {
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
  for (const char* name :
       {"serve/jobs_admitted", "serve/jobs_rejected", "serve/jobs_completed",
        "serve/jobs_failed", "serve/jobs_cancelled", "serve/cache/hits",
        "serve/cache/misses", "serve/cache/evictions",
        "serve/result_cache/evictions", "serve/result_cache/invalidations",
        "serve/connections_total", "serve/connections_rejected",
        "serve/requests_total", "serve/requests_malformed",
        "stream/appends_total", "stream/alerts_total",
        "stream/candidates_cached", "stream/candidates_delta",
        "stream/candidates_full"}) {
    registry->GetCounter(name);
  }
  registry->GetGauge("serve/queue_depth")->Set(0.0);
  registry->GetGauge("serve/open_connections")->Set(0.0);
  registry->GetGauge("serve/result_cache/entries")->Set(0.0);
  RequestSecondsHistogram();
}

void CountRequest(const char* name) {
  obs::MetricsRegistry::Default()->GetCounter(name)->Increment();
}

/// One fired alert as a JSON object (shared by append_rows responses,
/// watch status, and server_stats).
void WriteAlertJson(obs::JsonWriter* writer, const stream::StreamAlert& alert) {
  writer->BeginObject();
  writer->Key("dataset");
  writer->String(alert.dataset);
  writer->Key("slice");
  writer->String(alert.slice_display);
  writer->Key("score");
  writer->Double(alert.score);
  writer->Key("at_rows");
  writer->Int(alert.at_rows);
  writer->Key("at_seconds");
  writer->Double(alert.at_seconds);
  writer->Key("fingerprint");
  writer->String(std::to_string(alert.fingerprint));
  writer->EndObject();
}

/// Alerts kept for server_stats / watch status; old ones fall off.
constexpr size_t kMaxRecentAlerts = 32;

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(static_cast<size_t>(
          options.cache_capacity > 0 ? options.cache_capacity : 0)) {
  Scheduler::Options scheduler_options;
  scheduler_options.workers = options.workers;
  scheduler_options.max_queue = options.max_queue;
  scheduler_options.memory_budget_bytes =
      options.memory_budget_mb > 0 ? options.memory_budget_mb * (1 << 20) : 0;
  scheduler_options.fleet_tracing = options.fleet_tracing;
  scheduler_options.remote_engine = options.remote_engine;
  scheduler_ = std::make_unique<Scheduler>(scheduler_options);
}

Server::~Server() {
  RequestShutdown();
  if (started_ && !waited_) Wait();
}

Status Server::Start() {
  if (options_.unix_socket.empty() && options_.tcp_port < 0) {
    return Status::InvalidArgument(
        "server needs a unix socket path or a TCP port");
  }
  obs::SetMetricsEnabled(true);
  PreregisterServeMetrics();
  if (!options_.trace_out.empty() || options_.fleet_tracing) {
    obs::TraceRecorder::Default()->SetProcessLabel("server");
    obs::TraceRecorder::Default()->SetEnabled(true);
  }
  if (options_.tcp_port >= 0) {
    SLICELINE_ASSIGN_OR_RETURN(tcp_listener_,
                               ListenSocket::ListenTcp(options_.tcp_port));
    tcp_port_ = tcp_listener_.bound_port();
    accept_threads_.emplace_back([this] { AcceptLoop(&tcp_listener_); });
  }
  if (!options_.unix_socket.empty()) {
    SLICELINE_ASSIGN_OR_RETURN(unix_listener_,
                               ListenSocket::ListenUnix(options_.unix_socket));
    accept_threads_.emplace_back([this] { AcceptLoop(&unix_listener_); });
  }
  start_seconds_ = NowSeconds();
  started_ = true;
  std::ostringstream endpoints;
  if (tcp_port_ >= 0) endpoints << " on 127.0.0.1:" << tcp_port_;
  if (!options_.unix_socket.empty()) endpoints << " on " << options_.unix_socket;
  LOG_INFO << "serve: listening" << endpoints.str();
  return Status::OK();
}

int Server::Wait() {
  for (std::thread& thread : accept_threads_) thread.join();
  accept_threads_.clear();
  // Listeners are closed before the connection drain so new connect()
  // attempts fail fast instead of queueing behind the drain.
  tcp_listener_.Close();
  unix_listener_.Close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::thread& thread : connection_threads_) thread.join();
    connection_threads_.clear();
  }
  // Wait:false jobs may still be queued or running with no connection
  // attached; the drain promise covers them too.
  scheduler_->DrainAndStop();
  if (!options_.trace_out.empty()) {
    std::ofstream out(options_.trace_out);
    if (out) {
      obs::TraceRecorder::Default()->ExportChromeTrace(out);
    } else {
      LOG_WARNING << "serve: cannot write trace to " << options_.trace_out;
    }
  }
  waited_ = true;
  LOG_INFO << "serve: drained, exiting";
  return 0;
}

void Server::AcceptLoop(ListenSocket* listener) {
  while (!ShutdownRequested()) {
    StatusOr<SocketConnection> accepted = listener->Accept(kPollMillis);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) continue;
      if (!ShutdownRequested()) {
        LOG_WARNING << "serve: accept failed: " << accepted.status().message();
      }
      return;
    }
    CountRequest("serve/connections_total");
    if (open_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      CountRequest("serve/connections_rejected");
      SocketConnection rejected = std::move(accepted).value();
      (void)rejected.WriteLine(
          MakeErrorLine("",
                        Status::ResourceExhausted("too many open connections")),
          kMaxLineBytes);
      continue;  // closed by destructor
    }
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Default()
        ->GetGauge("serve/open_connections")
        ->Set(open_connections_.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_threads_.emplace_back(
        [this, connection = std::move(accepted).value()]() mutable {
          HandleConnection(std::move(connection));
          open_connections_.fetch_sub(1, std::memory_order_relaxed);
          obs::MetricsRegistry::Default()
              ->GetGauge("serve/open_connections")
              ->Set(open_connections_.load(std::memory_order_relaxed));
        });
  }
}

void Server::HandleConnection(SocketConnection connection) {
  // The loop polls between requests so an idle connection notices shutdown
  // within kPollMillis; a request already being served always completes.
  while (!ShutdownRequested()) {
    StatusOr<bool> readable = connection.WaitReadable(kPollMillis);
    if (!readable.ok()) return;
    if (!readable.value()) continue;
    StatusOr<std::string> line = connection.ReadLine(kMaxLineBytes);
    if (!line.ok()) {
      if (line.status().code() == StatusCode::kResourceExhausted) {
        // Overlong line: the stream is desynchronized; report and drop.
        (void)connection.WriteLine(MakeErrorLine("", line.status()),
                                   kMaxLineBytes);
      }
      return;
    }
    if (line.value().empty()) continue;
    if (line.value().rfind("GET ", 0) == 0) {
      HandleHttp(&connection, line.value());
      return;
    }
    const std::string response = HandleRequestLine(line.value());
    Status write_status = connection.WriteLine(response, kMaxLineBytes);
    if (write_status.code() == StatusCode::kResourceExhausted) {
      // The response tripped the framing guard before a single byte went
      // out: the stream is still synchronized, so substitute a structured
      // error the client can parse instead of going silent.
      write_status =
          connection.WriteLine(MakeErrorLine("", write_status), kMaxLineBytes);
    }
    if (!write_status.ok()) return;
  }
}

std::string Server::HandleRequestLine(const std::string& line) {
  TRACE_SPAN("serve/request");
  const double start = NowSeconds();
  CountRequest("serve/requests_total");
  std::string response;
  StatusOr<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    CountRequest("serve/requests_malformed");
    response = MakeErrorLine("", parsed.status());
  } else {
    const Request& request = parsed.value();
    switch (request.type) {
      case RequestType::kRegisterDataset:
        response = HandleRegisterDataset(request);
        break;
      case RequestType::kFindSlices:
        response = HandleFindSlices(request);
        break;
      case RequestType::kGetStatus:
        response = request.dataset.empty() ? HandleGetStatus(request)
                                           : HandleWatchStatus(request);
        break;
      case RequestType::kCancel:
        response = HandleCancel(request);
        break;
      case RequestType::kListDatasets:
        response = HandleListDatasets(request);
        break;
      case RequestType::kServerStats:
        response = HandleServerStats(request);
        break;
      case RequestType::kGetReport:
        response = HandleGetReport(request);
        break;
      case RequestType::kGetTrace:
        response = HandleGetTrace(request);
        break;
      case RequestType::kAppendRows:
        response = HandleAppendRows(request);
        break;
      case RequestType::kWatchDataset:
        response = HandleWatch(request);
        break;
      case RequestType::kUnwatchDataset:
        response = HandleUnwatch(request);
        break;
      case RequestType::kUnregisterDataset:
        response = HandleUnregisterDataset(request);
        break;
    }
  }
  RequestSecondsHistogram()->Observe(NowSeconds() - start);
  return response;
}

std::string Server::HandleRegisterDataset(const Request& request) {
  StatusOr<DatasetRegistry::RegisterOutcome> outcome =
      registry_.Register(request.register_dataset);
  if (!outcome.ok()) return MakeErrorLine(request.id, outcome.status());
  const RegisteredDataset& dataset = *outcome.value().dataset;
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("register_dataset");
  writer.Key("name");
  writer.String(dataset.name);
  writer.Key("n");
  writer.Int(dataset.dataset.n());
  writer.Key("m");
  writer.Int(dataset.dataset.m());
  writer.Key("one_hot_width");
  writer.Int(dataset.dataset.OneHotWidth());
  writer.Key("mean_error");
  writer.Double(dataset.mean_error);
  // As a string: JSON numbers are doubles on the wire and 64-bit hashes do
  // not survive the round-trip.
  writer.Key("data_hash");
  writer.String(std::to_string(dataset.data_hash));
  writer.Key("already_registered");
  writer.Bool(outcome.value().already_registered);
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleFindSlices(const Request& request) {
  const FindSlicesRequest& find = request.find_slices;
  if (find.engine != "native" && find.engine != "la" &&
      find.engine != "remote") {
    return MakeErrorLine(
        request.id,
        Status::InvalidArgument(
            "engine must be 'native', 'la', or 'remote', got '" +
            find.engine + "'"));
  }
  if (find.engine == "remote" && !options_.remote_engine) {
    return MakeErrorLine(
        request.id,
        Status::InvalidArgument(
            "engine 'remote' requires the server to be started with worker "
            "endpoints"));
  }
  if (find.k < 1) {
    return MakeErrorLine(request.id,
                         Status::InvalidArgument("k must be >= 1"));
  }
  if (!(find.alpha > 0.0 && find.alpha <= 1.0)) {
    return MakeErrorLine(
        request.id, Status::InvalidArgument("alpha must be in (0, 1]"));
  }
  if (find.sigma < 0 || find.max_level < 0 || find.deadline_ms < 0 ||
      find.memory_budget_mb < 0) {
    return MakeErrorLine(
        request.id,
        Status::InvalidArgument(
            "sigma, max_level, deadline_ms, memory_budget_mb must be >= 0"));
  }
  std::shared_ptr<const RegisteredDataset> dataset =
      registry_.Find(find.dataset);
  if (dataset == nullptr) {
    return MakeErrorLine(request.id, Status::NotFound("unknown dataset '" +
                                                      find.dataset + "'"));
  }

  core::SliceLineConfig config;
  config.k = static_cast<int>(find.k);
  config.alpha = find.alpha;
  config.min_support = find.sigma;
  config.max_level = static_cast<int>(find.max_level);

  // Cache key: dataset content x the parameters the result depends on
  // (resolved sigma canonicalizes "sigma 0" vs "sigma it resolves to").
  const int64_t resolved_sigma =
      core::ResolveMinSupport(config, dataset->dataset.n());
  const uint64_t config_hash =
      core::HashConfigForCheckpoint(config, resolved_sigma, find.engine);

  if (find.wait) {
    if (std::shared_ptr<const CachedResult> cached =
            cache_.Lookup(dataset->data_hash, config_hash)) {
      return MakeResultResponse(request.id, /*job_id=*/-1, /*cache_hit=*/true,
                                cached->result, cached->feature_names);
    }
  }

  JobSpec spec;
  spec.dataset = dataset;
  spec.engine = find.engine;
  spec.config = config;
  spec.deadline_seconds = find.deadline_ms > 0
                              ? static_cast<double>(find.deadline_ms) / 1e3
                              : options_.default_deadline_seconds;
  spec.memory_budget_bytes =
      find.memory_budget_mb > 0 ? find.memory_budget_mb * (1 << 20) : 0;

  StatusOr<std::shared_ptr<Job>> submitted = scheduler_->Submit(std::move(spec));
  if (!submitted.ok()) return MakeErrorLine(request.id, submitted.status());
  const std::shared_ptr<Job>& job = submitted.value();

  if (!find.wait) {
    std::ostringstream os;
    obs::JsonWriter writer(os);
    BeginOkResponse(&writer, request.id);
    writer.Key("type");
    writer.String("find_slices");
    writer.Key("job");
    writer.Int(job->id);
    writer.Key("state");
    writer.String(JobStateName(job->CurrentState()));
    writer.EndObject();
    os << '\n';
    return os.str();
  }

  job->WaitDone();
  std::lock_guard<std::mutex> lock(job->mutex);
  if (job->state == JobState::kFailed) {
    return MakeErrorLine(request.id, job->error);
  }
  if (job->state == JobState::kCancelled) {
    return MakeErrorLine(request.id,
                         Status::Cancelled("job cancelled while queued"));
  }
  if (job->result.outcome.termination ==
      RunOutcome::Termination::kCompleted) {
    auto cached = std::make_shared<CachedResult>();
    cached->result = job->result;
    cached->feature_names = dataset->dataset.feature_names;
    cache_.Insert(dataset->data_hash, config_hash, std::move(cached));
  }
  return MakeResultResponse(request.id, job->id, /*cache_hit=*/false,
                            job->result, dataset->dataset.feature_names);
}

std::string Server::HandleGetStatus(const Request& request) {
  std::shared_ptr<Job> job = scheduler_->Find(request.job_id);
  if (job == nullptr) {
    return MakeErrorLine(request.id, Status::NotFound(
                                         "unknown job " +
                                         std::to_string(request.job_id)));
  }
  std::lock_guard<std::mutex> lock(job->mutex);
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("get_status");
  writer.Key("job");
  writer.Int(job->id);
  writer.Key("state");
  writer.String(JobStateName(job->state));
  writer.Key("queued_seconds");
  writer.Double(job->queued_seconds);
  writer.Key("run_seconds");
  writer.Double(job->run_seconds);
  if (job->state == JobState::kDone) {
    writer.Key("result");
    WriteResultJson(&writer, job->result,
                    job->spec.dataset->dataset.feature_names);
  } else if (job->state == JobState::kFailed) {
    writer.Key("error");
    writer.BeginObject();
    writer.Key("code");
    writer.String(ErrorCodeForStatus(job->error));
    writer.Key("message");
    writer.String(job->error.message());
    writer.EndObject();
  }
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleCancel(const Request& request) {
  StatusOr<JobState> state = scheduler_->Cancel(request.job_id);
  if (!state.ok()) return MakeErrorLine(request.id, state.status());
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("cancel");
  writer.Key("job");
  writer.Int(request.job_id);
  writer.Key("state");
  writer.String(JobStateName(state.value()));
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleListDatasets(const Request& request) {
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("list_datasets");
  writer.Key("datasets");
  writer.BeginArray();
  for (const std::shared_ptr<const RegisteredDataset>& dataset :
       registry_.List()) {
    writer.BeginObject();
    writer.Key("name");
    writer.String(dataset->name);
    writer.Key("n");
    writer.Int(dataset->dataset.n());
    writer.Key("m");
    writer.Int(dataset->dataset.m());
    writer.Key("one_hot_width");
    writer.Int(dataset->dataset.OneHotWidth());
    writer.Key("mean_error");
    writer.Double(dataset->mean_error);
    writer.Key("data_hash");
    writer.String(std::to_string(dataset->data_hash));
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleServerStats(const Request& request) {
  // Flush the server trace on stats requests too (not only at shutdown):
  // an operator polling server_stats gets an up-to-date trace file without
  // bouncing the daemon. ExportChromeTrace copies, so nothing is lost.
  if (!options_.trace_out.empty()) {
    std::ofstream trace_file(options_.trace_out);
    if (trace_file) {
      obs::TraceRecorder::Default()->ExportChromeTrace(trace_file);
    } else {
      LOG_WARNING << "serve: cannot write trace to " << options_.trace_out;
    }
  }
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("server_stats");
  writer.Key("protocol_version");
  writer.Int(kProtocolVersion);
  writer.Key("uptime_seconds");
  writer.Double(NowSeconds() - start_seconds_);
  writer.Key("workers");
  writer.Int(options_.workers);
  writer.Key("max_queue");
  writer.Int(options_.max_queue);
  writer.Key("queue_depth");
  writer.Int(scheduler_->queue_depth());
  writer.Key("running");
  writer.Int(scheduler_->running());
  writer.Key("draining");
  writer.Bool(ShutdownRequested());
  writer.Key("jobs");
  writer.BeginObject();
  writer.Key("admitted");
  writer.Int(scheduler_->jobs_admitted());
  writer.Key("rejected");
  writer.Int(scheduler_->jobs_rejected());
  writer.Key("completed");
  writer.Int(scheduler_->jobs_completed());
  writer.Key("failed");
  writer.Int(scheduler_->jobs_failed());
  writer.Key("cancelled");
  writer.Int(scheduler_->jobs_cancelled());
  writer.EndObject();
  writer.Key("cache");
  writer.BeginObject();
  writer.Key("size");
  writer.Int(static_cast<int64_t>(cache_.size()));
  writer.Key("hits");
  writer.Int(cache_.hits());
  writer.Key("misses");
  writer.Int(cache_.misses());
  writer.Key("evictions");
  writer.Int(cache_.evictions());
  writer.Key("invalidations");
  writer.Int(cache_.invalidations());
  writer.EndObject();
  writer.Key("datasets");
  writer.Int(registry_.size());
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    writer.Key("stream");
    writer.BeginObject();
    writer.Key("watches");
    writer.Int(static_cast<int64_t>(watches_.size()));
    writer.Key("appends_total");
    writer.Int(appends_total_);
    writer.Key("alerts_total");
    writer.Int(alerts_total_);
    writer.Key("recent_alerts");
    writer.BeginArray();
    for (const stream::StreamAlert& alert : recent_alerts_) {
      WriteAlertJson(&writer, alert);
    }
    writer.EndArray();
    writer.EndObject();
  }
  const MemoryBudget* budget = scheduler_->shared_budget();
  writer.Key("memory");
  writer.BeginObject();
  writer.Key("used_bytes");
  writer.Int(budget->used_bytes());
  writer.Key("peak_bytes");
  writer.Int(budget->peak_bytes());
  writer.Key("limit_bytes");
  writer.Int(budget->limit_bytes());
  writer.EndObject();
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleJobDocument(const Request& request,
                                      const char* type_name,
                                      const char* field,
                                      std::string Job::*document) {
  std::shared_ptr<Job> job = scheduler_->Find(request.job_id);
  if (job == nullptr) {
    return MakeErrorLine(request.id,
                         Status::NotFound("unknown job " +
                                          std::to_string(request.job_id)));
  }
  std::lock_guard<std::mutex> lock(job->mutex);
  const std::string& payload = (*job).*document;
  if (payload.empty()) {
    return MakeErrorLine(
        request.id,
        Status::InvalidArgument("job " + std::to_string(job->id) + " has no " +
                                std::string(field) + " (state=" +
                                JobStateName(job->state) + ")"));
  }
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String(type_name);
  writer.Key("job");
  writer.Int(job->id);
  writer.Key("trace_id");
  writer.String(std::to_string(job->trace_id));
  // Carried as a string holding the document's exact bytes: re-encoding
  // the parsed tree would push 64-bit ids through doubles, and clients
  // want to dump the document verbatim anyway.
  writer.Key(field);
  writer.String(payload);
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleGetReport(const Request& request) {
  return HandleJobDocument(request, "get_report", "report",
                           &Job::report_json);
}

std::string Server::HandleGetTrace(const Request& request) {
  return HandleJobDocument(request, "get_trace", "trace", &Job::trace_json);
}

std::string Server::HandleAppendRows(const Request& request) {
  TRACE_SPAN("serve/append_rows");
  const AppendRowsRequest& append = request.append_rows;
  if (append.chunks < 1) {
    return MakeErrorLine(request.id,
                         Status::InvalidArgument("chunks must be >= 1"));
  }
  if (append.chunk < 0 || append.chunk >= append.chunks) {
    return MakeErrorLine(
        request.id,
        Status::InvalidArgument("chunk must be in [0, chunks)"));
  }
  if (append.errors.size() != append.rows.size()) {
    return MakeErrorLine(
        request.id,
        Status::InvalidArgument("append needs one error per row"));
  }

  // The whole streaming surface serializes here: buffer the chunk, apply
  // the transfer, invalidate the cache, and run the watch evaluation before
  // returning. A drain (SIGTERM) waits for in-flight requests, so an
  // accepted append is always fully applied and its alert recorded.
  std::lock_guard<std::mutex> lock(stream_mutex_);
  const std::string transfer_key = append.dataset + '\0' + append.xfer;
  std::vector<std::vector<std::string>> rows;
  std::vector<double> errors;
  if (append.chunks == 1) {
    rows = append.rows;
    errors = append.errors;
  } else {
    if (append.chunk == 0) pending_appends_.erase(transfer_key);
    PendingAppend& pending = pending_appends_[transfer_key];
    if (append.chunk == 0) pending.chunks = append.chunks;
    if (append.chunk != pending.received ||
        append.chunks != pending.chunks) {
      pending_appends_.erase(transfer_key);
      return MakeErrorLine(
          request.id,
          Status::InvalidArgument(
              "append chunk out of order; transfer voided"));
    }
    pending.rows.insert(pending.rows.end(), append.rows.begin(),
                        append.rows.end());
    pending.errors.insert(pending.errors.end(), append.errors.begin(),
                          append.errors.end());
    ++pending.received;
    if (pending.received < pending.chunks) {
      std::ostringstream os;
      obs::JsonWriter writer(os);
      BeginOkResponse(&writer, request.id);
      writer.Key("type");
      writer.String("append_rows");
      writer.Key("dataset");
      writer.String(append.dataset);
      writer.Key("chunk");
      writer.Int(append.chunk);
      writer.Key("buffered_rows");
      writer.Int(static_cast<int64_t>(pending.rows.size()));
      writer.EndObject();
      os << '\n';
      return os.str();
    }
    rows = std::move(pending.rows);
    errors = std::move(pending.errors);
    pending_appends_.erase(transfer_key);
  }

  StatusOr<DatasetRegistry::AppendOutcome> outcome =
      registry_.AppendRows(append.dataset, rows, errors);
  if (!outcome.ok()) return MakeErrorLine(request.id, outcome.status());
  const int64_t invalidated =
      cache_.InvalidateDataset(outcome.value().previous_hash);
  ++appends_total_;
  CountRequest("stream/appends_total");

  std::optional<stream::StreamAlert> alert;
  const auto watch_it = watches_.find(append.dataset);
  if (watch_it != watches_.end()) {
    StatusOr<std::optional<stream::StreamAlert>> fired =
        watch_it->second->OnAppend(outcome.value().delta_x0,
                                   outcome.value().delta_errors);
    if (!fired.ok()) return MakeErrorLine(request.id, fired.status());
    alert = std::move(fired).value();
    if (alert.has_value()) {
      ++alerts_total_;
      CountRequest("stream/alerts_total");
      recent_alerts_.push_front(*alert);
      while (recent_alerts_.size() > kMaxRecentAlerts) {
        recent_alerts_.pop_back();
      }
      LOG_INFO << "serve: stream alert on '" << alert->dataset
               << "': " << alert->slice_display << " score=" << alert->score;
    }
  }

  const RegisteredDataset& dataset = *outcome.value().dataset;
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("append_rows");
  writer.Key("dataset");
  writer.String(dataset.name);
  writer.Key("rows_appended");
  writer.Int(static_cast<int64_t>(rows.size()));
  writer.Key("n");
  writer.Int(dataset.dataset.n());
  writer.Key("version");
  writer.Int(dataset.version);
  writer.Key("data_hash");
  writer.String(std::to_string(dataset.data_hash));
  writer.Key("cache_invalidated");
  writer.Int(invalidated);
  if (alert.has_value()) {
    writer.Key("alert");
    WriteAlertJson(&writer, *alert);
  }
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleWatch(const Request& request) {
  const WatchRequest& watch = request.watch;
  if (watch.k < 1) {
    return MakeErrorLine(request.id,
                         Status::InvalidArgument("k must be >= 1"));
  }
  if (!(watch.alpha > 0.0 && watch.alpha <= 1.0)) {
    return MakeErrorLine(
        request.id, Status::InvalidArgument("alpha must be in (0, 1]"));
  }
  std::shared_ptr<const RegisteredDataset> dataset =
      registry_.Find(watch.dataset);
  if (dataset == nullptr) {
    return MakeErrorLine(request.id, Status::NotFound("unknown dataset '" +
                                                      watch.dataset + "'"));
  }

  stream::WatchOptions options;
  options.tau = watch.tau;
  options.hysteresis = watch.hysteresis;
  options.window_rows = watch.window_rows;
  options.window_seconds = watch.window_seconds;
  options.config.k = static_cast<int>(watch.k);
  options.config.alpha = watch.alpha;
  options.config.min_support = watch.sigma;
  options.config.max_level = static_cast<int>(watch.max_level);
  // Frozen encoder domains keep the one-hot layout stable across appends
  // and window rebuilds; a dataset registered without encoders (in-process
  // test fixtures) falls back to its observed column maxima.
  options.stream.domains = dataset->encoders != nullptr
                               ? dataset->encoders->Domains()
                               : dataset->dataset.x0.ColMaxs();

  StatusOr<std::unique_ptr<stream::SliceWatcher>> watcher =
      stream::SliceWatcher::Create(
          dataset->name, dataset->dataset.x0, dataset->dataset.errors,
          dataset->dataset.feature_names, std::move(options), options_.clock);
  if (!watcher.ok()) return MakeErrorLine(request.id, watcher.status());

  std::lock_guard<std::mutex> lock(stream_mutex_);
  const bool replaced = watches_.count(watch.dataset) > 0;
  watches_[watch.dataset] = std::move(watcher).value();

  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("watch");
  writer.Key("dataset");
  writer.String(watch.dataset);
  writer.Key("replaced");
  writer.Bool(replaced);
  writer.Key("window_rows");
  writer.Int(watches_[watch.dataset]->window_rows());
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleUnwatch(const Request& request) {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  const bool existed = watches_.erase(request.dataset) > 0;
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("unwatch");
  writer.Key("dataset");
  writer.String(request.dataset);
  writer.Key("existed");
  writer.Bool(existed);
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleUnregisterDataset(const Request& request) {
  std::shared_ptr<const RegisteredDataset> dataset =
      registry_.Find(request.dataset);
  if (dataset == nullptr) {
    return MakeErrorLine(request.id, Status::NotFound("unknown dataset '" +
                                                      request.dataset + "'"));
  }
  if (scheduler_->HasActiveJobsForDataset(request.dataset)) {
    return MakeErrorLine(
        request.id,
        Status::InvalidArgument("dataset '" + request.dataset +
                                "' has active jobs; wait or cancel first"));
  }
  int64_t invalidated = 0;
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    if (watches_.count(request.dataset) > 0) {
      return MakeErrorLine(
          request.id,
          Status::InvalidArgument("dataset '" + request.dataset +
                                  "' is being watched; unwatch first"));
    }
    // Void any half-received append transfers targeting the dataset.
    const std::string prefix = request.dataset + '\0';
    for (auto it = pending_appends_.begin(); it != pending_appends_.end();) {
      it = it->first.rfind(prefix, 0) == 0 ? pending_appends_.erase(it)
                                           : ++it;
    }
    Status dropped = registry_.Unregister(request.dataset);
    if (!dropped.ok()) return MakeErrorLine(request.id, dropped);
    invalidated = cache_.InvalidateDataset(dataset->data_hash);
  }
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("unregister_dataset");
  writer.Key("dataset");
  writer.String(request.dataset);
  writer.Key("cache_invalidated");
  writer.Int(invalidated);
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::HandleWatchStatus(const Request& request) {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  const auto it = watches_.find(request.dataset);
  if (it == watches_.end()) {
    return MakeErrorLine(request.id,
                         Status::NotFound("no watch on dataset '" +
                                          request.dataset + "'"));
  }
  const stream::SliceWatcher& watcher = *it->second;
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, request.id);
  writer.Key("type");
  writer.String("get_status");
  writer.Key("dataset");
  writer.String(request.dataset);
  writer.Key("watching");
  writer.Bool(true);
  writer.Key("tau");
  writer.Double(watcher.options().tau);
  writer.Key("hysteresis");
  writer.Double(watcher.options().hysteresis);
  writer.Key("armed");
  writer.Bool(watcher.armed());
  writer.Key("last_score");
  writer.Double(watcher.last_score());
  writer.Key("alerts_fired");
  writer.Int(watcher.alerts_fired());
  writer.Key("evaluations");
  writer.Int(watcher.evaluations());
  writer.Key("window_rows");
  writer.Int(watcher.window_rows());
  writer.Key("window_rebuilds");
  writer.Int(watcher.window_rebuilds());
  writer.Key("total_rows");
  writer.Int(watcher.total_rows());
  writer.Key("fingerprint");
  writer.String(std::to_string(watcher.finder().fingerprint()));
  writer.Key("recent_alerts");
  writer.BeginArray();
  for (const stream::StreamAlert& alert : recent_alerts_) {
    if (alert.dataset == request.dataset) WriteAlertJson(&writer, alert);
  }
  writer.EndArray();
  writer.EndObject();
  os << '\n';
  return os.str();
}

int64_t Server::watch_count() const {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  return static_cast<int64_t>(watches_.size());
}

int64_t Server::stream_alerts_total() const {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  return alerts_total_;
}

std::string Server::MakeResultResponse(
    const std::string& id, int64_t job_id, bool cache_hit,
    const core::SliceLineResult& result,
    const std::vector<std::string>& feature_names) {
  std::ostringstream os;
  obs::JsonWriter writer(os);
  BeginOkResponse(&writer, id);
  writer.Key("type");
  writer.String("find_slices");
  if (job_id >= 0) {
    writer.Key("job");
    writer.Int(job_id);
  }
  writer.Key("cache_hit");
  writer.Bool(cache_hit);
  writer.Key("result");
  WriteResultJson(&writer, result, feature_names);
  writer.EndObject();
  os << '\n';
  return os.str();
}

std::string Server::MetricsText() {
  std::ostringstream os;
  obs::RunReport::WritePrometheus(os);
  return os.str();
}

void Server::HandleHttp(SocketConnection* connection,
                        const std::string& request_line) {
  TRACE_SPAN("serve/http");
  // "GET <path> HTTP/1.x"; the header block is drained so well-behaved
  // clients (curl) do not see a reset while still sending.
  for (;;) {
    StatusOr<std::string> header = connection->ReadLine(kMaxLineBytes);
    if (!header.ok()) break;
    const std::string& value = header.value();
    if (value.empty() || value == "\r") break;
  }
  std::string path = request_line.substr(4);
  const size_t space = path.find(' ');
  if (space != std::string::npos) path.resize(space);

  std::string body;
  std::string status_line;
  std::string content_type = "text/plain; charset=utf-8";
  if (path == "/metrics") {
    status_line = "HTTP/1.0 200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = MetricsText();
  } else if (path == "/healthz") {
    // Liveness: the process is up and serving connections.
    status_line = "HTTP/1.0 200 OK";
    body = "ok\n";
  } else if (path == "/readyz") {
    // Readiness: stops advertising once a drain begins so load balancers
    // steer new work away while in-flight jobs finish.
    if (ShutdownRequested()) {
      status_line = "HTTP/1.0 503 Service Unavailable";
      body = "draining\n";
    } else {
      status_line = "HTTP/1.0 200 OK";
      body = "ready\n";
    }
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "only /metrics, /healthz, /readyz are served over HTTP\n";
  }
  std::ostringstream os;
  os << status_line << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n"
     << "\r\n"
     << body;
  (void)connection->WriteAll(os.str());
}

}  // namespace sliceline::serve
