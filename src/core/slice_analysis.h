#ifndef SLICELINE_CORE_SLICE_ANALYSIS_H_
#define SLICELINE_CORE_SLICE_ANALYSIS_H_

#include <string>
#include <vector>

#include "core/slice.h"
#include "data/int_matrix.h"

namespace sliceline::core {

/// Post-hoc analysis of a slice-finding result against the dataset it was
/// computed on: overlap structure (slice finding intentionally allows
/// overlapping slices), combined coverage, and per-slice error shares.
struct SliceAnalysis {
  /// Jaccard similarity of row sets for every slice pair (row-major
  /// upper-triangular packing, entry (i, j > i) at index i*K - i*(i+1)/2 +
  /// (j - i - 1)).
  std::vector<double> pairwise_jaccard;
  /// Number of rows covered by at least one slice.
  int64_t covered_rows = 0;
  /// Fraction of the total dataset error inside the union of all slices.
  double covered_error_share = 0.0;
  /// Per-slice fraction of the total dataset error.
  std::vector<double> error_shares;
};

/// Computes overlap/coverage statistics for `slices` over (x0, errors).
SliceAnalysis AnalyzeSlices(const std::vector<Slice>& slices,
                            const data::IntMatrix& x0,
                            const std::vector<double>& errors);

/// Jaccard similarity of two slices' matching-row sets.
double SliceJaccard(const Slice& a, const Slice& b,
                    const data::IntMatrix& x0);

/// Serializes a result as a JSON document (slices with predicates/stats,
/// per-level enumeration statistics); feature names are optional.
std::string ResultToJson(const SliceLineResult& result,
                         const std::vector<std::string>& feature_names = {});

}  // namespace sliceline::core

#endif  // SLICELINE_CORE_SLICE_ANALYSIS_H_
