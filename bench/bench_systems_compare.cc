// Reproduces the Section 5.4 "ML Systems Comparison": the paper compares
// its SystemDS DML implementation (5.6s on Adult) against an R
// implementation (200.4s) and the original SliceFinder's hand-crafted
// lattice search (>100s reported). The analogous comparison here is the
// linear-algebra transliteration engine vs. the native engine vs. the
// reimplemented SliceFinder heuristic baseline, on identical inputs.
#include <cstdio>

#include "baseline/slicefinder.h"
#include "bench_util.h"
#include "common/string_util.h"
#include "core/sliceline.h"
#include "core/sliceline_la.h"

int main() {
  using namespace sliceline;
  bench::Banner("Section 5.4: ML Systems Comparison (Adult)",
                "SliceLine Section 5.4 (SystemDS vs R vs SliceFinder)");
  data::EncodedDataset ds = bench::Load("adult");
  std::printf("dataset: %s n=%s (ceil(L)=3, alpha=0.95, K=4)\n\n",
              ds.name.c_str(), FormatWithCommas(ds.n()).c_str());

  core::SliceLineConfig config;
  config.alpha = 0.95;
  config.k = 4;
  config.max_level = 3;

  auto native = core::RunSliceLine(ds, config);
  auto la = core::RunSliceLineLA(ds, config);
  if (!native.ok() || !la.ok()) {
    std::fprintf(stderr, "engine run failed\n");
    return 1;
  }

  baseline::SliceFinderConfig sf_config;
  sf_config.k = 4;
  sf_config.max_level = 3;
  auto heuristic = baseline::RunSliceFinder(ds.x0, ds.errors, sf_config);
  if (!heuristic.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 heuristic.status().ToString().c_str());
    return 1;
  }

  std::printf("%-34s %12s %14s\n", "implementation", "time[s]", "evaluated");
  std::printf("%-34s %12s %14s\n", "SliceLine native (cf. SystemDS)",
              FormatDouble(native->total_seconds, 3).c_str(),
              FormatWithCommas(native->total_evaluated).c_str());
  std::printf("%-34s %12s %14s\n", "SliceLine LA-kernels (cf. R)",
              FormatDouble(la->total_seconds, 3).c_str(),
              FormatWithCommas(la->total_evaluated).c_str());
  std::printf("%-34s %12s %14s\n", "SliceFinder heuristic baseline",
              FormatDouble(heuristic->total_seconds, 3).c_str(),
              FormatWithCommas(heuristic->evaluated).c_str());

  std::printf("\ntop-1 agreement: native=%s\n",
              native->top_k.empty()
                  ? "(none)"
                  : native->top_k[0].ToString(ds.feature_names).c_str());
  std::printf("                 la    =%s\n",
              la->top_k.empty()
                  ? "(none)"
                  : la->top_k[0].ToString(ds.feature_names).c_str());
  if (!heuristic->slices.empty()) {
    std::printf("baseline first reported slice: %s (effect size %.3f)\n",
                heuristic->slices[0].ToString(ds.feature_names).c_str(),
                heuristic->slices[0].stats.score);
  }
  std::printf(
      "\nExpected shape (paper): both SliceLine engines return identical\n"
      "top-K; the generic-kernel (LA) engine is slower than the native\n"
      "engine (SystemDS-vs-R gap), and the heuristic baseline terminates\n"
      "level-wise without exactness guarantees.\n");
  return 0;
}
