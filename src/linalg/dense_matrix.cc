#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/checked_math.h"
#include "common/logging.h"

namespace sliceline::linalg {

namespace {

// Validated rows * cols for the aborting constructors: a wrapping product
// would size the backing vector from garbage.
int64_t CheckedShapeOrDie(int64_t rows, int64_t cols) {
  int64_t count = 0;
  const Status st = CheckedElementCount(rows, cols, sizeof(double), &count);
  SLICELINE_CHECK(st.ok()) << st.ToString();
  return count;
}

}  // namespace

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(CheckedShapeOrDie(rows, cols)), fill),
      charge_(static_cast<int64_t>(data_.capacity() * sizeof(double))) {}

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols, std::vector<double> data)
    : rows_(rows),
      cols_(cols),
      data_(std::move(data)),
      charge_(static_cast<int64_t>(data_.capacity() * sizeof(double))) {
  SLICELINE_CHECK_EQ(static_cast<int64_t>(data_.size()),
                     CheckedShapeOrDie(rows, cols));
}

StatusOr<DenseMatrix> DenseMatrix::Create(int64_t rows, int64_t cols,
                                          double fill) {
  SLICELINE_RETURN_NOT_OK(
      CheckedElementCount(rows, cols, sizeof(double), nullptr));
  return DenseMatrix(rows, cols, fill);
}

void DenseMatrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

DenseMatrix DenseMatrix::MatMul(const DenseMatrix& other) const {
  SLICELINE_CHECK_EQ(cols_, other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = 0; k < cols_; ++k) {
      const double aik = At(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(i);
      for (int64_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

std::vector<double> DenseMatrix::MatVec(const std::vector<double>& x) const {
  SLICELINE_CHECK_EQ(cols_, static_cast<int64_t>(x.size()));
  std::vector<double> y(static_cast<size_t>(rows_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* r = row(i);
    double acc = 0.0;
    for (int64_t j = 0; j < cols_; ++j) acc += r[j] * x[j];
    y[i] = acc;
  }
  return y;
}

std::vector<double> DenseMatrix::TransposeMatVec(
    const std::vector<double>& x) const {
  SLICELINE_CHECK_EQ(rows_, static_cast<int64_t>(x.size()));
  std::vector<double> y(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* r = row(i);
    for (int64_t j = 0; j < cols_; ++j) y[j] += xi * r[j];
  }
  return y;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  SLICELINE_CHECK(SameShape(other));
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

std::string DenseMatrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " dense\n";
  const int64_t r = std::min<int64_t>(rows_, max_rows);
  const int64_t c = std::min<int64_t>(cols_, max_cols);
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) os << At(i, j) << (j + 1 < c ? " " : "");
    if (c < cols_) os << " ...";
    os << "\n";
  }
  if (r < rows_) os << "...\n";
  return os.str();
}

StatusOr<std::vector<double>> CholeskySolve(const DenseMatrix& a,
                                            const std::vector<double>& b,
                                            double ridge) {
  const int64_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("CholeskySolve requires a square matrix");
  }
  if (static_cast<int64_t>(b.size()) != n) {
    return Status::InvalidArgument("CholeskySolve rhs size mismatch");
  }
  // Factor A + ridge*I = L L^T in a working copy.
  DenseMatrix l(n, n);
  for (int64_t j = 0; j < n; ++j) {
    double diag = a.At(j, j) + ridge;
    for (int64_t k = 0; k < j; ++k) diag -= l.At(j, k) * l.At(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::Internal("matrix not positive definite at pivot " +
                              std::to_string(j));
    }
    const double ljj = std::sqrt(diag);
    l.At(j, j) = ljj;
    for (int64_t i = j + 1; i < n; ++i) {
      double v = a.At(i, j);
      for (int64_t k = 0; k < j; ++k) v -= l.At(i, k) * l.At(j, k);
      l.At(i, j) = v / ljj;
    }
  }
  // Forward substitution L y = b.
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double v = b[i];
    for (int64_t k = 0; k < i; ++k) v -= l.At(i, k) * y[k];
    y[i] = v / l.At(i, i);
  }
  // Back substitution L^T x = y.
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) {
    double v = y[i];
    for (int64_t k = i + 1; k < n; ++k) v -= l.At(k, i) * x[k];
    x[i] = v / l.At(i, i);
  }
  return x;
}

}  // namespace sliceline::linalg
