#ifndef SLICELINE_SERVE_SCHEDULER_H_
#define SLICELINE_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/run_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/slice.h"
#include "serve/dataset_registry.h"

namespace sliceline::serve {

/// What one find_slices job runs: the (immutable, shared) dataset, the
/// engine, the fully resolved config, and the per-job resource envelope.
struct JobSpec {
  std::shared_ptr<const RegisteredDataset> dataset;
  std::string engine = "native";  ///< "native" | "la"
  core::SliceLineConfig config;
  double deadline_seconds = 0.0;     ///< 0 = none; from execution start
  int64_t memory_budget_bytes = 0;   ///< 0 = the scheduler's shared budget
};

enum class JobState {
  kQueued,
  kRunning,
  kDone,       ///< result available (possibly partial, see outcome)
  kFailed,     ///< error status available
  kCancelled,  ///< cancelled while still queued; never ran
};

const char* JobStateName(JobState state);

/// One submitted job. State transitions are guarded by `mutex` and
/// announced on `cv`; the result/error fields are written exactly once,
/// before the transition to a terminal state. A job cancelled mid-run still
/// ends kDone -- the engines honor cooperative cancellation by returning
/// best-so-far results with outcome.termination == kCancelled.
struct Job {
  int64_t id = 0;
  JobSpec spec;
  RunContext run_context;  ///< cancellation + deadline + budget for the run
  /// Owned per-job budget when the spec overrides the shared one.
  std::unique_ptr<MemoryBudget> own_budget;

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  JobState state = JobState::kQueued;
  Status error;  ///< kFailed only
  core::SliceLineResult result;  ///< kDone only
  double queued_seconds = 0.0;  ///< guarded by `mutex` (status polls read it)
  double run_seconds = 0.0;     ///< guarded by `mutex`

  JobState CurrentState() const;
  bool Terminal() const;

  /// Blocks until the job reaches a terminal state.
  void WaitDone() const;
};

/// Bounded-queue job scheduler over the shared ThreadPool. Admission
/// control is a hard bound on jobs admitted but not yet finished
/// (queued + running): past the bound Submit returns ResourceExhausted and
/// the server maps that to a structured protocol error instead of letting
/// latecomers starve everything. All jobs share one server-wide memory
/// budget (so concurrent heavy queries degrade cooperatively) unless their
/// spec carries its own.
class Scheduler {
 public:
  struct Options {
    int workers = 4;
    /// Maximum jobs admitted and not yet terminal (queued + running).
    int max_queue = 16;
    /// Server-wide memory budget; <= 0 = unlimited (accounting only).
    int64_t memory_budget_bytes = 0;
    double soft_fraction = 0.8;
  };

  explicit Scheduler(const Options& options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits and dispatches a job, or rejects with ResourceExhausted (queue
  /// full) / Cancelled (scheduler draining).
  StatusOr<std::shared_ptr<Job>> Submit(JobSpec spec);

  /// nullptr when the id was never issued (or already forgotten).
  std::shared_ptr<Job> Find(int64_t id) const;

  /// Cancels a job: a queued job flips to kCancelled without running; a
  /// running job gets its cancellation token set and finishes with a
  /// partial result. Terminal jobs are left untouched (returns their
  /// state). NotFound for unknown ids.
  StatusOr<JobState> Cancel(int64_t id);

  /// Stops admitting and waits for every admitted job to reach a terminal
  /// state (the SIGTERM drain path). Idempotent.
  void DrainAndStop();

  int64_t queue_depth() const;  ///< admitted, not yet running
  int64_t running() const;
  int64_t jobs_admitted() const;
  int64_t jobs_rejected() const;
  int64_t jobs_completed() const;  ///< kDone
  int64_t jobs_failed() const;
  int64_t jobs_cancelled() const;  ///< cancelled while queued

  MemoryBudget* shared_budget() { return &shared_budget_; }

 private:
  void Execute(const std::shared_ptr<Job>& job);
  void FinishJob(const std::shared_ptr<Job>& job, JobState terminal,
                 Status error, core::SliceLineResult result);
  void UpdateQueueDepthGauge() const;

  const Options options_;
  MemoryBudget shared_budget_;

  mutable std::mutex mutex_;
  std::condition_variable drain_cv_;
  bool draining_ = false;
  int64_t next_job_id_ = 1;
  int64_t queued_ = 0;
  int64_t running_ = 0;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  int64_t completed_ = 0;
  int64_t failed_ = 0;
  int64_t cancelled_ = 0;
  std::map<int64_t, std::shared_ptr<Job>> jobs_;

  // Last member on purpose: destroyed first, so ~ThreadPool joins the
  // workers -- waiting out any closure still inside FinishJob -- while the
  // mutex, condition variable, and counters above are all still alive.
  ThreadPool pool_;
};

}  // namespace sliceline::serve

#endif  // SLICELINE_SERVE_SCHEDULER_H_
