#ifndef SLICELINE_DATA_INT_MATRIX_H_
#define SLICELINE_DATA_INT_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace sliceline::data {

/// Row-major matrix of 1-based integer feature codes — the X0 input of
/// Algorithm 1. Entry (r, j) is the code of feature j for row r, in
/// [1, domain_j]. Code 0 is reserved for "free feature" in slice
/// representations and never appears in X0 itself.
class IntMatrix {
 public:
  IntMatrix() : rows_(0), cols_(0) {}
  IntMatrix(int64_t rows, int64_t cols, int32_t fill = 0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {
    SLICELINE_CHECK_GE(rows, 0);
    SLICELINE_CHECK_GE(cols, 0);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  int32_t& At(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  int32_t At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }
  const int32_t* row(int64_t r) const { return data_.data() + r * cols_; }
  int32_t* row(int64_t r) { return data_.data() + r * cols_; }

  const std::vector<int32_t>& data() const { return data_; }

  /// Per-column maximum code (colMaxs(X0)); the feature domain sizes under
  /// the continuous 1..d_j encoding contract.
  std::vector<int32_t> ColMaxs() const {
    std::vector<int32_t> out(static_cast<size_t>(cols_), 0);
    for (int64_t r = 0; r < rows_; ++r) {
      const int32_t* rw = row(r);
      for (int64_t j = 0; j < cols_; ++j) {
        if (rw[j] > out[j]) out[j] = rw[j];
      }
    }
    return out;
  }

  /// Appends the rows of `delta` after the existing rows. The delta must
  /// have the same column count; existing rows keep their indices, so code
  /// referring to rows [0, rows()) before the append stays valid after it.
  void AppendRows(const IntMatrix& delta) {
    SLICELINE_CHECK_EQ(delta.cols(), cols_);
    data_.insert(data_.end(), delta.data_.begin(), delta.data_.end());
    rows_ += delta.rows_;
  }

  /// Row-wise replication (used by the Figure 7(a) scalability experiment).
  IntMatrix ReplicateRows(int64_t times) const {
    IntMatrix out(rows_ * times, cols_);
    for (int64_t t = 0; t < times; ++t) {
      std::copy(data_.begin(), data_.end(),
                out.data_.begin() + t * rows_ * cols_);
    }
    return out;
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int32_t> data_;
};

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_INT_MATRIX_H_
