#ifndef SLICELINE_LINALG_MATRIX_IO_H_
#define SLICELINE_LINALG_MATRIX_IO_H_

#include <string>

#include "common/status.h"
#include "linalg/csr_matrix.h"

namespace sliceline::linalg {

/// Writes a CSR matrix in MatrixMarket coordinate format
/// ("%%MatrixMarket matrix coordinate real general", 1-based indices).
/// Interoperates with SciPy/Matlab/SystemDS tooling for offline inspection
/// of one-hot matrices and slice matrices.
Status WriteMatrixMarket(const CsrMatrix& matrix, const std::string& path);

/// Reads a MatrixMarket coordinate file into a CSR matrix. Supports the
/// "general" and "symmetric" qualifiers with real or integer fields;
/// duplicate coordinates are summed.
StatusOr<CsrMatrix> ReadMatrixMarket(const std::string& path);

/// String-based variants (testing and embedding convenience).
std::string ToMatrixMarketString(const CsrMatrix& matrix);
StatusOr<CsrMatrix> ParseMatrixMarket(const std::string& content);

}  // namespace sliceline::linalg

#endif  // SLICELINE_LINALG_MATRIX_IO_H_
