#include <algorithm>

#include "common/logging.h"
#include "linalg/kernels.h"
#include "obs/kernel_scope.h"

namespace sliceline::linalg {

std::pair<CsrMatrix, std::vector<int64_t>> RemoveEmptyRows(
    const CsrMatrix& m) {
  std::vector<int64_t> kept;
  for (int64_t r = 0; r < m.rows(); ++r) {
    if (m.RowNnz(r) > 0) kept.push_back(r);
  }
  return {GatherRows(m, kept), kept};
}

CsrMatrix SelectRows(const CsrMatrix& m, const std::vector<uint8_t>& keep) {
  SLICELINE_CHECK_EQ(m.rows(), static_cast<int64_t>(keep.size()));
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < m.rows(); ++r) {
    if (keep[r]) rows.push_back(r);
  }
  return GatherRows(m, rows);
}

CsrMatrix GatherRows(const CsrMatrix& m, const std::vector<int64_t>& rows) {
  SLICELINE_KERNEL_SCOPE("GatherRows");
  std::vector<int64_t> row_ptr(rows.size() + 1, 0);
  int64_t nnz = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    SLICELINE_CHECK(rows[i] >= 0 && rows[i] < m.rows());
    nnz += m.RowNnz(rows[i]);
    row_ptr[i + 1] = nnz;
  }
  std::vector<int64_t> out_cols(nnz);
  std::vector<double> out_vals(nnz);
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    std::copy(m.RowCols(r), m.RowCols(r) + m.RowNnz(r),
              out_cols.begin() + row_ptr[i]);
    std::copy(m.RowVals(r), m.RowVals(r) + m.RowNnz(r),
              out_vals.begin() + row_ptr[i]);
  }
  return CsrMatrix(static_cast<int64_t>(rows.size()), m.cols(),
                   std::move(row_ptr), std::move(out_cols),
                   std::move(out_vals));
}

CsrMatrix SelectColumns(const CsrMatrix& m, const std::vector<int64_t>& cols) {
  SLICELINE_KERNEL_SCOPE("SelectColumns");
  // Map original column -> new compact index, -1 for dropped.
  std::vector<int64_t> remap(static_cast<size_t>(m.cols()), -1);
  for (size_t j = 0; j < cols.size(); ++j) {
    SLICELINE_CHECK(cols[j] >= 0 && cols[j] < m.cols());
    if (j > 0) SLICELINE_CHECK_LT(cols[j - 1], cols[j]);
    remap[cols[j]] = static_cast<int64_t>(j);
  }
  std::vector<int64_t> row_ptr(m.rows() + 1, 0);
  std::vector<int64_t> out_cols;
  std::vector<double> out_vals;
  for (int64_t r = 0; r < m.rows(); ++r) {
    const int64_t* rcols = m.RowCols(r);
    const double* rvals = m.RowVals(r);
    const int64_t nnz = m.RowNnz(r);
    for (int64_t k = 0; k < nnz; ++k) {
      const int64_t nc = remap[rcols[k]];
      if (nc >= 0) {
        out_cols.push_back(nc);
        out_vals.push_back(rvals[k]);
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(out_cols.size());
  }
  return CsrMatrix(m.rows(), static_cast<int64_t>(cols.size()),
                   std::move(row_ptr), std::move(out_cols),
                   std::move(out_vals));
}

CsrMatrix Rbind(const CsrMatrix& top, const CsrMatrix& bottom) {
  SLICELINE_CHECK_EQ(top.cols(), bottom.cols());
  std::vector<int64_t> row_ptr;
  row_ptr.reserve(top.rows() + bottom.rows() + 1);
  row_ptr.insert(row_ptr.end(), top.row_ptr().begin(), top.row_ptr().end());
  const int64_t offset = top.nnz();
  for (int64_t r = 1; r <= bottom.rows(); ++r) {
    row_ptr.push_back(bottom.row_ptr()[r] + offset);
  }
  std::vector<int64_t> out_cols;
  out_cols.reserve(top.nnz() + bottom.nnz());
  out_cols.insert(out_cols.end(), top.col_idx().begin(), top.col_idx().end());
  out_cols.insert(out_cols.end(), bottom.col_idx().begin(),
                  bottom.col_idx().end());
  std::vector<double> out_vals;
  out_vals.reserve(top.nnz() + bottom.nnz());
  out_vals.insert(out_vals.end(), top.values().begin(), top.values().end());
  out_vals.insert(out_vals.end(), bottom.values().begin(),
                  bottom.values().end());
  return CsrMatrix(top.rows() + bottom.rows(), top.cols(), std::move(row_ptr),
                   std::move(out_cols), std::move(out_vals));
}

CsrMatrix SliceRowRange(const CsrMatrix& m, int64_t begin, int64_t end) {
  SLICELINE_KERNEL_SCOPE("SliceRowRange");
  SLICELINE_CHECK(begin >= 0 && begin <= end && end <= m.rows());
  std::vector<int64_t> rows;
  rows.reserve(end - begin);
  for (int64_t r = begin; r < end; ++r) rows.push_back(r);
  return GatherRows(m, rows);
}

}  // namespace sliceline::linalg
