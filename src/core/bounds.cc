#include "core/bounds.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sliceline::core {

namespace {

/// Score upper bound at a specific hypothetical size s, using the
/// size-dependent error bound se(s) = min(error_ub, s * max_error_ub).
double BoundAt(const ScoringContext& context, const ParentBounds& bounds,
               double s) {
  if (s <= 0.0) return ScoringContext::kMinusInfinity;
  const double se = std::min(bounds.error_ub, s * bounds.max_error_ub);
  const double nd = static_cast<double>(context.n());
  const double avg = context.average_error();
  if (avg <= 0.0) return ScoringContext::kMinusInfinity;
  return context.alpha() * ((se / s) / avg - 1.0) -
         (1.0 - context.alpha()) * (nd / s - 1.0);
}

}  // namespace

double UpperBoundScore(const ScoringContext& context, int64_t sigma,
                       const ParentBounds& bounds) {
  SLICELINE_DCHECK(sigma >= 1);
  if (bounds.parents == 0) return ScoringContext::kMinusInfinity;
  const double lo = static_cast<double>(sigma);
  const double hi = static_cast<double>(bounds.size_ub);
  if (hi < lo) return ScoringContext::kMinusInfinity;
  if (bounds.error_ub <= 0.0) {
    // No error mass can reach any child; only the size term remains, which
    // is maximized at the largest feasible size.
    return BoundAt(context, bounds, hi);
  }
  // The bound is piecewise monotone in s with a knee where the two error
  // bounds cross (se_ub == s * sm_ub); evaluate the interval endpoints and
  // the knee (clamped into [lo, hi], rounded both ways for safety).
  double best = std::max(BoundAt(context, bounds, lo),
                         BoundAt(context, bounds, hi));
  if (bounds.max_error_ub > 0.0) {
    const double knee = bounds.error_ub / bounds.max_error_ub;
    for (double s : {std::floor(knee), std::ceil(knee)}) {
      s = std::clamp(s, lo, hi);
      best = std::max(best, BoundAt(context, bounds, s));
    }
  }
  return best;
}

}  // namespace sliceline::core
