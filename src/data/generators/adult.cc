#include <cmath>

#include "common/rng.h"
#include "data/generators/generators.h"
#include "data/generators/planted_slices.h"

namespace sliceline::data {

// Adult-like census income dataset: 14 features whose domains sum to the
// paper's one-hot width l=162, a 2-class label, a mix of large and small
// slices (the paper notes Adult shows good pruning and early termination),
// and mild correlation between the education feature and its binned numeric
// twin (as in the real data).
EncodedDataset MakeAdult(const DatasetOptions& options) {
  const int64_t n = internal::ResolveRows(options, 32561);
  Rng rng(options.seed + 1);

  // Domains per feature; sum = 162 (Table 1's l for Adult).
  const std::vector<int32_t> domains = {10, 8,  10, 16, 16, 7,  14,
                                        6,  5,  2,  10, 10, 10, 38};
  EncodedDataset ds;
  ds.name = "adult";
  ds.task = Task::kClassification;
  ds.num_classes = 2;
  ds.x0 = IntMatrix(n, static_cast<int64_t>(domains.size()));
  ds.feature_names = {"age_bin",     "workclass",    "fnlwgt_bin",
                      "education",   "edu_num_bin",  "marital",
                      "occupation",  "relationship", "race",
                      "sex",         "cap_gain_bin", "cap_loss_bin",
                      "hours_bin",   "country"};

  // Independent skewed features.
  for (size_t j = 0; j < domains.size(); ++j) {
    if (j == 4) continue;  // filled from education below
    const double zipf = (j == 13) ? 1.3 : (j == 6 || j == 1) ? 0.6 : 0.3;
    FillCategorical(ds.x0, static_cast<int>(j), domains[j], zipf, rng);
  }
  // Age / capital-gain / capital-loss bins are correlated in the real data;
  // the aligned codes keep mid-size slices alive through deeper lattice
  // levels (Adult terminates late, at level 12 of 14, in the paper).
  FillCorrelatedGroup(ds.x0, {0, 10, 11}, {10, 10, 10}, 0.25, rng);
  // edu_num_bin tracks education with 15% noise (real-data correlation).
  for (int64_t i = 0; i < n; ++i) {
    int32_t edu = ds.x0.At(i, 3);  // 1..16
    int32_t code = rng.NextBool(0.15)
                       ? static_cast<int32_t>(rng.NextUint64(16)) + 1
                       : edu;
    ds.x0.At(i, 4) = code;
  }

  ds.y.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // Income depends on education and hours with noise: ~24% positive class.
    const double logit = -2.2 + 0.12 * ds.x0.At(i, 3) + 0.08 * ds.x0.At(i, 12);
    const double p = 1.0 / (1.0 + std::exp(-logit));
    ds.y[i] = rng.NextBool(p) ? 1.0 : 0.0;
  }

  // Planted problematic subgroups (mirrors the paper's motivating
  // "gender female and degree PhD" style slices).
  ds.planted.push_back(PlantedSlice{{{9, 2}, {3, 16}}, 1.6});          // sex=2, education=16
  ds.planted.push_back(PlantedSlice{{{5, 3}, {6, 7}}, 1.3});           // marital=3, occupation=7
  ds.planted.push_back(PlantedSlice{{{8, 5}, {9, 1}, {0, 9}}, 1.8});   // race=5, sex=1, age_bin=9

  // Bake the planted difficulty into the labels so trained models
  // genuinely struggle on these slices (held-out debugging works).
  InjectPlantedDifficulty(&ds, 0.0, 0.25, rng);

  ErrorSimOptions err;
  err.base_rate = 0.14;
  err.planted_rate = 0.42;
  ds.errors = SimulateModelErrors(ds, err, rng);
  return ds;
}

}  // namespace sliceline::data
