file(REMOVE_RECURSE
  "libsliceline_core.a"
)
