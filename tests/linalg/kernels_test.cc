#include "linalg/kernels.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sliceline::linalg {
namespace {

/// Random sparse matrix with the given density; negative values allowed.
CsrMatrix RandomSparse(Rng& rng, int64_t rows, int64_t cols, double density) {
  CooBuilder builder(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      if (rng.NextBool(density)) builder.Add(i, j, rng.NextInt(-4, 5));
    }
  }
  return builder.Build();
}

TEST(ReduceKernelsTest, ColSumsMatchesDense) {
  Rng rng(1);
  CsrMatrix m = RandomSparse(rng, 20, 9, 0.3);
  std::vector<double> sums = ColSums(m);
  DenseMatrix d = m.ToDense();
  for (int64_t j = 0; j < m.cols(); ++j) {
    double expect = 0;
    for (int64_t i = 0; i < m.rows(); ++i) expect += d.At(i, j);
    EXPECT_DOUBLE_EQ(sums[j], expect) << "col " << j;
  }
}

TEST(ReduceKernelsTest, ColMaxsIncludesImplicitZeros) {
  // Column 0 has only negative entries but also implicit zeros -> max 0.
  CooBuilder builder(3, 2);
  builder.Add(0, 0, -2.0);
  builder.Add(0, 1, 5.0);
  builder.Add(1, 1, 7.0);
  builder.Add(2, 1, -1.0);
  CsrMatrix m = builder.Build();
  std::vector<double> maxs = ColMaxs(m);
  EXPECT_DOUBLE_EQ(maxs[0], 0.0);   // implicit zeros dominate -2
  EXPECT_DOUBLE_EQ(maxs[1], 7.0);   // full column, true max
}

TEST(ReduceKernelsTest, ColMaxsFullNegativeColumn) {
  CooBuilder builder(2, 1);
  builder.Add(0, 0, -2.0);
  builder.Add(1, 0, -5.0);
  CsrMatrix m = builder.Build();
  EXPECT_DOUBLE_EQ(ColMaxs(m)[0], -2.0);  // no implicit zeros
}

TEST(ReduceKernelsTest, RowSumsAndRowMaxs) {
  Rng rng(2);
  CsrMatrix m = RandomSparse(rng, 15, 8, 0.4);
  std::vector<double> sums = RowSums(m);
  std::vector<double> maxs = RowMaxs(m);
  DenseMatrix d = m.ToDense();
  for (int64_t i = 0; i < m.rows(); ++i) {
    double s = 0;
    double mx = -1e300;
    for (int64_t j = 0; j < m.cols(); ++j) {
      s += d.At(i, j);
      mx = std::max(mx, d.At(i, j));
    }
    EXPECT_DOUBLE_EQ(sums[i], s);
    EXPECT_DOUBLE_EQ(maxs[i], mx);
  }
}

TEST(ReduceKernelsTest, RowIndexMax) {
  CooBuilder builder(3, 4);
  builder.Add(0, 1, 2.0);
  builder.Add(0, 3, 5.0);
  builder.Add(2, 0, -1.0);
  CsrMatrix m = builder.Build();
  std::vector<int64_t> idx = RowIndexMax(m);
  EXPECT_EQ(idx[0], 3);
  EXPECT_EQ(idx[1], -1);  // empty row
  EXPECT_EQ(idx[2], 0);
}

TEST(MatVecTest, MatchesDense) {
  Rng rng(3);
  CsrMatrix m = RandomSparse(rng, 12, 7, 0.35);
  std::vector<double> x(7);
  for (auto& v : x) v = rng.NextGaussian();
  std::vector<double> y = MatVec(m, x);
  std::vector<double> expect = m.ToDense().MatVec(x);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
}

TEST(MatVecTest, TransposeMatchesDense) {
  Rng rng(4);
  CsrMatrix m = RandomSparse(rng, 12, 7, 0.35);
  std::vector<double> x(12);
  for (auto& v : x) v = rng.NextGaussian();
  std::vector<double> y = TransposeMatVec(m, x);
  std::vector<double> expect = m.ToDense().TransposeMatVec(x);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
}

TEST(ElementwiseTest, FilterEquals) {
  CooBuilder builder(2, 3);
  builder.Add(0, 0, 2.0);
  builder.Add(0, 1, 3.0);
  builder.Add(1, 2, 2.0);
  CsrMatrix f = FilterEquals(builder.Build(), 2.0);
  EXPECT_EQ(f.nnz(), 2);
  EXPECT_DOUBLE_EQ(f.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(f.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(f.At(1, 2), 1.0);
}

TEST(ElementwiseTest, ScaleRowsDropsZeroScale) {
  CooBuilder builder(3, 2);
  builder.Add(0, 0, 2.0);
  builder.Add(1, 1, 3.0);
  builder.Add(2, 0, 4.0);
  CsrMatrix s = ScaleRows(builder.Build(), {2.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(s.At(0, 0), 4.0);
  EXPECT_EQ(s.RowNnz(1), 0);
  EXPECT_DOUBLE_EQ(s.At(2, 0), -4.0);
}

TEST(ElementwiseTest, AddMatchesDense) {
  Rng rng(5);
  CsrMatrix a = RandomSparse(rng, 10, 6, 0.3);
  CsrMatrix b = RandomSparse(rng, 10, 6, 0.3);
  CsrMatrix c = Add(a, b);
  DenseMatrix expect = a.ToDense();
  for (int64_t i = 0; i < 10; ++i)
    for (int64_t j = 0; j < 6; ++j) expect.At(i, j) += b.ToDense().At(i, j);
  EXPECT_DOUBLE_EQ(c.ToDense().MaxAbsDiff(expect), 0.0);
}

TEST(ElementwiseTest, AddCancellationDropsEntries) {
  CooBuilder ba(1, 2);
  ba.Add(0, 0, 1.0);
  CooBuilder bb(1, 2);
  bb.Add(0, 0, -1.0);
  bb.Add(0, 1, 2.0);
  CsrMatrix c = Add(ba.Build(), bb.Build());
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 2.0);
}

TEST(ElementwiseTest, Binarize) {
  CooBuilder builder(1, 3);
  builder.Add(0, 0, 5.0);
  builder.Add(0, 2, -3.0);
  CsrMatrix b = Binarize(builder.Build());
  EXPECT_DOUBLE_EQ(b.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(b.At(0, 2), 1.0);
}

TEST(ElementwiseTest, UpperTriEquals) {
  CooBuilder builder(3, 3);
  builder.Add(0, 1, 2.0);
  builder.Add(1, 0, 2.0);  // lower triangle, excluded
  builder.Add(0, 0, 2.0);  // diagonal, excluded
  builder.Add(1, 2, 3.0);  // wrong value
  builder.Add(0, 2, 2.0);
  auto entries = UpperTriEquals(builder.Build(), 2.0);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (std::pair<int64_t, int64_t>{0, 1}));
  EXPECT_EQ(entries[1], (std::pair<int64_t, int64_t>{0, 2}));
}

TEST(SelectTest, RemoveEmptyRows) {
  CooBuilder builder(4, 2);
  builder.Add(1, 0, 1.0);
  builder.Add(3, 1, 2.0);
  auto [compact, kept] = RemoveEmptyRows(builder.Build());
  EXPECT_EQ(compact.rows(), 2);
  EXPECT_EQ(kept, (std::vector<int64_t>{1, 3}));
  EXPECT_DOUBLE_EQ(compact.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(compact.At(1, 1), 2.0);
}

TEST(SelectTest, SelectRowsAndGatherRows) {
  Rng rng(6);
  CsrMatrix m = RandomSparse(rng, 8, 5, 0.4);
  CsrMatrix sel = SelectRows(m, {1, 0, 1, 0, 0, 1, 0, 0});
  EXPECT_EQ(sel.rows(), 3);
  CsrMatrix gathered = GatherRows(m, {5, 2, 0});
  EXPECT_EQ(gathered.rows(), 3);
  for (int64_t j = 0; j < 5; ++j) {
    EXPECT_DOUBLE_EQ(gathered.At(0, j), m.At(5, j));
    EXPECT_DOUBLE_EQ(gathered.At(1, j), m.At(2, j));
    EXPECT_DOUBLE_EQ(gathered.At(2, j), m.At(0, j));
  }
}

TEST(SelectTest, GatherRowsAllowsDuplicates) {
  CooBuilder builder(2, 2);
  builder.Add(0, 1, 3.0);
  CsrMatrix g = GatherRows(builder.Build(), {0, 0});
  EXPECT_EQ(g.rows(), 2);
  EXPECT_DOUBLE_EQ(g.At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(g.At(1, 1), 3.0);
}

TEST(SelectTest, SelectColumnsCompacts) {
  Rng rng(7);
  CsrMatrix m = RandomSparse(rng, 6, 8, 0.5);
  CsrMatrix sel = SelectColumns(m, {1, 4, 7});
  EXPECT_EQ(sel.cols(), 3);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(sel.At(i, 0), m.At(i, 1));
    EXPECT_DOUBLE_EQ(sel.At(i, 1), m.At(i, 4));
    EXPECT_DOUBLE_EQ(sel.At(i, 2), m.At(i, 7));
  }
}

TEST(SelectTest, RbindStacks) {
  Rng rng(8);
  CsrMatrix a = RandomSparse(rng, 3, 4, 0.5);
  CsrMatrix b = RandomSparse(rng, 2, 4, 0.5);
  CsrMatrix c = Rbind(a, b);
  EXPECT_EQ(c.rows(), 5);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(c.At(0, j), a.At(0, j));
    EXPECT_DOUBLE_EQ(c.At(4, j), b.At(1, j));
  }
}

TEST(SelectTest, SliceRowRange) {
  Rng rng(9);
  CsrMatrix m = RandomSparse(rng, 10, 3, 0.5);
  CsrMatrix s = SliceRowRange(m, 3, 7);
  EXPECT_EQ(s.rows(), 4);
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(s.At(i, j), m.At(3 + i, j));
}

TEST(ConstructTest, TableCountsPairs) {
  CsrMatrix t = Table({0, 0, 1, 0}, {1, 1, 2, 0}, 2, 3);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 2.0);  // duplicate position summed
  EXPECT_DOUBLE_EQ(t.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(1, 2), 1.0);
}

TEST(ConstructTest, TableWithWeights) {
  CsrMatrix t = Table({0, 0}, {1, 1}, {0.5, 0.25}, 1, 2);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 0.75);
}

TEST(ConstructTest, CumSumAndCumProd) {
  EXPECT_EQ(CumSum({1, 2, 3}), (std::vector<double>{1, 3, 6}));
  EXPECT_EQ(CumProd({2, 3, 4}), (std::vector<double>{2, 6, 24}));
  EXPECT_TRUE(CumSum({}).empty());
}

TEST(ConstructTest, OrderDescStable) {
  std::vector<int64_t> idx = OrderDesc({1.0, 3.0, 3.0, 0.5});
  EXPECT_EQ(idx, (std::vector<int64_t>{1, 2, 0, 3}));
}

}  // namespace
}  // namespace sliceline::linalg
