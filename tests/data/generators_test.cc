#include "data/generators/generators.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/generators/planted_slices.h"
#include "data/onehot.h"

namespace sliceline::data {
namespace {

class GeneratorShapeTest : public ::testing::TestWithParam<DatasetInfo> {};

TEST_P(GeneratorShapeTest, MatchesTableOneShape) {
  const DatasetInfo& info = GetParam();
  DatasetOptions opts;
  opts.rows = std::min<int64_t>(info.default_rows, 4000);
  auto ds = MakeDatasetByName(info.name, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->name, info.name);
  EXPECT_EQ(ds->n(), opts.rows);
  EXPECT_EQ(ds->m(), info.columns);
  EXPECT_EQ(static_cast<int64_t>(ds->y.size()), ds->n());
  EXPECT_EQ(static_cast<int64_t>(ds->errors.size()), ds->n());
  // Every code is in 1..domain and errors are non-negative.
  for (int64_t i = 0; i < ds->n(); ++i) {
    EXPECT_GE(ds->errors[i], 0.0);
    for (int64_t j = 0; j < ds->m(); ++j) EXPECT_GE(ds->x0.At(i, j), 1);
  }
}

TEST_P(GeneratorShapeTest, Deterministic) {
  const DatasetInfo& info = GetParam();
  DatasetOptions opts;
  opts.rows = 1000;
  opts.seed = 99;
  auto a = MakeDatasetByName(info.name, opts);
  auto b = MakeDatasetByName(info.name, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->x0.data(), b->x0.data());
  EXPECT_EQ(a->errors, b->errors);
  EXPECT_EQ(a->y, b->y);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GeneratorShapeTest, ::testing::ValuesIn(ListDatasets()),
    [](const ::testing::TestParamInfo<DatasetInfo>& info) {
      return info.param.name;
    });

TEST(GeneratorTest, FullWidthMatchesPaperForFixedDomains) {
  // Domains are data-independent by construction for these generators, so
  // the one-hot width must equal Table 1's l even at reduced row counts.
  DatasetOptions opts;
  opts.rows = 4000;
  EXPECT_EQ(MakeAdult(opts).OneHotWidth(), 162);
  EXPECT_EQ(MakeCovtype(opts).OneHotWidth(), 188);
  EXPECT_EQ(MakeUsCensus(opts).OneHotWidth(), 378);
  EXPECT_EQ(MakeSalaries(DatasetOptions{397, 42}).OneHotWidth(), 27);
}

TEST(GeneratorTest, Kdd98WidthMatchesPaper) {
  DatasetOptions opts;
  opts.rows = 3000;
  EncodedDataset ds = MakeKdd98(opts);
  EXPECT_EQ(ds.m(), 469);
  // Sum of declared domains (codes may not all be observed at small n, so
  // compare against the declared structure: 360*10 + 80*20 + 20*50 + 9*242).
  EXPECT_EQ(360 * 10 + 80 * 20 + 20 * 50 + 9 * 242, 8378);
}

TEST(GeneratorTest, CriteoIsUltraSparseAfterOneHot) {
  DatasetOptions opts;
  opts.rows = 20000;
  EncodedDataset ds = MakeCriteo(opts);
  const int64_t l = ds.OneHotWidth();
  // One-hot density is m / l; Criteo-like data must be well under 1%.
  const double density = static_cast<double>(ds.m()) / static_cast<double>(l);
  EXPECT_LT(density, 0.01);
  // Only a small fraction of one-hot columns should clear sigma = n/100.
  const FeatureOffsets off = ComputeOffsets(ds.x0);
  std::vector<int64_t> counts(static_cast<size_t>(off.total), 0);
  for (int64_t i = 0; i < ds.n(); ++i) {
    for (int64_t j = 0; j < ds.m(); ++j) {
      ++counts[off.ColumnOf(static_cast<int>(j), ds.x0.At(i, j))];
    }
  }
  const int64_t sigma = ds.n() / 100;
  int64_t qualifying = 0;
  for (int64_t c : counts) qualifying += c >= sigma;
  EXPECT_LT(qualifying, off.total / 20);
  EXPECT_GT(qualifying, 0);
}

TEST(GeneratorTest, PlantedSlicesHaveElevatedError) {
  DatasetOptions opts;
  opts.rows = 20000;
  EncodedDataset ds = MakeAdult(opts);
  ASSERT_FALSE(ds.planted.empty());
  double total = 0.0;
  for (double e : ds.errors) total += e;
  const double avg = total / static_cast<double>(ds.n());
  // The first planted slice (2 predicates, decent support) must show a
  // higher mean error than the dataset average.
  const PlantedSlice& slice = ds.planted[0];
  double slice_sum = 0.0;
  int64_t slice_count = 0;
  for (int64_t i = 0; i < ds.n(); ++i) {
    if (RowMatchesPlanted(ds.x0, i, slice)) {
      slice_sum += ds.errors[i];
      ++slice_count;
    }
  }
  ASSERT_GT(slice_count, 0);
  EXPECT_GT(slice_sum / static_cast<double>(slice_count), 1.5 * avg);
}

TEST(GeneratorTest, UnknownNameFails) {
  EXPECT_FALSE(MakeDatasetByName("nope").ok());
}

TEST(GeneratorTest, ListDatasetsMatchesPaperTable1) {
  const std::vector<DatasetInfo> infos = ListDatasets();
  ASSERT_EQ(infos.size(), 6u);
  EXPECT_EQ(infos[1].name, "adult");
  EXPECT_EQ(infos[1].paper_rows, 32561);
  EXPECT_EQ(infos[1].paper_onehot, 162);
  EXPECT_EQ(infos[5].paper_rows, 192215183);
  EXPECT_EQ(infos[5].paper_onehot, 75573541);
}

TEST(ReplicateTest, RowAndColumnReplication) {
  DatasetOptions opts;
  opts.rows = 400;
  EncodedDataset ds = MakeSalaries(opts);
  EncodedDataset rep = Replicate(ds, 2, 2);
  EXPECT_EQ(rep.n(), 2 * ds.n());
  EXPECT_EQ(rep.m(), 2 * ds.m());
  EXPECT_EQ(rep.errors.size(), 2 * ds.errors.size());
  // Column copies are identical (perfect correlation).
  for (int64_t i = 0; i < rep.n(); ++i) {
    for (int64_t j = 0; j < ds.m(); ++j) {
      EXPECT_EQ(rep.x0.At(i, j), rep.x0.At(i, j + ds.m()));
    }
  }
  // Row copies replicate the original rows.
  for (int64_t i = 0; i < ds.n(); ++i) {
    for (int64_t j = 0; j < ds.m(); ++j) {
      EXPECT_EQ(rep.x0.At(ds.n() + i, j), ds.x0.At(i, j));
    }
  }
}

TEST(ErrorSimTest, SeverityScalesClassificationErrorRate) {
  EncodedDataset ds;
  ds.task = Task::kClassification;
  ds.x0 = IntMatrix(10000, 1);
  for (int64_t i = 0; i < ds.n(); ++i) ds.x0.At(i, 0) = 1 + (i % 2);
  ds.planted.push_back(PlantedSlice{{{0, 2}}, 1.5});
  Rng rng(5);
  ErrorSimOptions opts;
  opts.base_rate = 0.1;
  opts.planted_rate = 0.4;
  std::vector<double> errors = SimulateModelErrors(ds, opts, rng);
  double base_sum = 0;
  double planted_sum = 0;
  for (int64_t i = 0; i < ds.n(); ++i) {
    (ds.x0.At(i, 0) == 2 ? planted_sum : base_sum) += errors[i];
  }
  EXPECT_NEAR(base_sum / 5000.0, 0.1, 0.03);
  EXPECT_NEAR(planted_sum / 5000.0, 0.6, 0.05);
}

}  // namespace
}  // namespace sliceline::data
