# Empty compiler generated dependencies file for sliceline_ml.
# This may be replaced when dependencies are built.
