#include "common/logging.h"

#include <gtest/gtest.h>

namespace sliceline {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, StreamingCompiles) {
  // Messages below the threshold are swallowed; above, they go to stderr.
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  LOG_INFO << "suppressed " << 42;
  LOG_WARNING << "also suppressed";
  SUCCEED();
}

TEST(CheckTest, PassingChecksAreSilent) {
  SLICELINE_CHECK(true);
  SLICELINE_CHECK_EQ(1, 1);
  SLICELINE_CHECK_NE(1, 2);
  SLICELINE_CHECK_LT(1, 2);
  SLICELINE_CHECK_LE(2, 2);
  SLICELINE_CHECK_GT(3, 2);
  SLICELINE_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(CheckDeathTest, FailingChecksAbort) {
  EXPECT_DEATH(SLICELINE_CHECK(false) << "boom", "Check failed: false boom");
  EXPECT_DEATH(SLICELINE_CHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(SLICELINE_CHECK_LT(5, 2), "Check failed");
}

TEST(CheckDeathTest, FatalLogAborts) {
  EXPECT_DEATH(LOG_FATAL << "fatal message", "fatal message");
}

}  // namespace
}  // namespace sliceline
