# Empty dependencies file for bench_fig7b_parallel.
# This may be replaced when dependencies are built.
