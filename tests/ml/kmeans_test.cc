#include "ml/kmeans.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sliceline::ml {
namespace {

/// Three well-separated clusters on a one-hot-ish design.
linalg::CsrMatrix ClusteredData(Rng& rng, int64_t per_cluster,
                                std::vector<double>* truth) {
  linalg::CooBuilder builder(per_cluster * 3, 9);
  truth->clear();
  for (int64_t i = 0; i < per_cluster * 3; ++i) {
    const int cluster = static_cast<int>(i / per_cluster);
    truth->push_back(cluster);
    // Cluster c occupies columns [3c, 3c+3) with high probability.
    for (int j = 0; j < 3; ++j) {
      if (rng.NextBool(0.9)) builder.Add(i, cluster * 3 + j, 1.0);
    }
  }
  return builder.Build();
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  Rng rng(5);
  std::vector<double> truth;
  linalg::CsrMatrix x = ClusteredData(rng, 80, &truth);
  KMeans::Options opts;
  opts.k = 3;
  auto result = KMeans::Run(x, opts);
  ASSERT_TRUE(result.ok());
  // Clustering is label-invariant: check that same-truth rows co-cluster.
  // Compute purity: for each found cluster, its majority truth share.
  int64_t correct = 0;
  for (int c = 0; c < 3; ++c) {
    int counts[3] = {0, 0, 0};
    for (size_t i = 0; i < truth.size(); ++i) {
      if (static_cast<int>(result->assignments[i]) == c) {
        ++counts[static_cast<int>(truth[i])];
      }
    }
    correct += *std::max_element(counts, counts + 3);
  }
  EXPECT_GT(static_cast<double>(correct) / truth.size(), 0.9);
  EXPECT_GT(result->iterations, 0);
}

TEST(KMeansTest, AssignmentsInRange) {
  Rng rng(7);
  std::vector<double> truth;
  linalg::CsrMatrix x = ClusteredData(rng, 20, &truth);
  KMeans::Options opts;
  opts.k = 4;
  auto result = KMeans::Run(x, opts);
  ASSERT_TRUE(result.ok());
  for (double a : result->assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
  EXPECT_EQ(result->centroids.rows(), 4);
  EXPECT_EQ(result->centroids.cols(), x.cols());
}

TEST(KMeansTest, DeterministicForSeed) {
  Rng rng(9);
  std::vector<double> truth;
  linalg::CsrMatrix x = ClusteredData(rng, 30, &truth);
  KMeans::Options opts;
  opts.k = 3;
  opts.seed = 11;
  auto a = KMeans::Run(x, opts);
  auto b = KMeans::Run(x, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, KOneAssignsEverythingToOneCluster) {
  Rng rng(13);
  std::vector<double> truth;
  linalg::CsrMatrix x = ClusteredData(rng, 10, &truth);
  KMeans::Options opts;
  opts.k = 1;
  auto result = KMeans::Run(x, opts);
  ASSERT_TRUE(result.ok());
  for (double a : result->assignments) EXPECT_EQ(a, 0);
}

TEST(KMeansTest, RejectsBadK) {
  linalg::CsrMatrix x = linalg::CsrMatrix::Zero(5, 2);
  KMeans::Options opts;
  opts.k = 0;
  EXPECT_FALSE(KMeans::Run(x, opts).ok());
  opts.k = 10;
  EXPECT_FALSE(KMeans::Run(x, opts).ok());  // fewer rows than clusters
}

}  // namespace
}  // namespace sliceline::ml
