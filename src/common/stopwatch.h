#ifndef SLICELINE_COMMON_STOPWATCH_H_
#define SLICELINE_COMMON_STOPWATCH_H_

#include <chrono>

namespace sliceline {

/// Wall-clock stopwatch used by the benchmark harness and per-level timing
/// statistics. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sliceline

#endif  // SLICELINE_COMMON_STOPWATCH_H_
