# Empty dependencies file for bench_fig7a_rows.
# This may be replaced when dependencies are built.
