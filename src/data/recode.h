#ifndef SLICELINE_DATA_RECODE_H_
#define SLICELINE_DATA_RECODE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace sliceline::data {

/// Dictionary encoder mapping string categories to a continuous 1-based
/// integer code range (the "recoding" preprocessing of Section 5.1). Codes
/// are assigned in first-occurrence order so the mapping is deterministic.
class RecodeMap {
 public:
  /// Builds the dictionary from the distinct values of `values`.
  static RecodeMap Fit(const std::vector<std::string>& values);

  /// Number of distinct categories (the feature domain d_j).
  int32_t domain() const { return static_cast<int32_t>(code_to_value_.size()); }

  /// Code of a category; NotFound for unseen categories.
  StatusOr<int32_t> Encode(const std::string& value) const;

  /// Encodes a full column; unseen values are an error.
  StatusOr<std::vector<int32_t>> EncodeAll(
      const std::vector<std::string>& values) const;

  /// Category of a 1-based code; OutOfRange if invalid.
  StatusOr<std::string> Decode(int32_t code) const;

 private:
  std::map<std::string, int32_t> value_to_code_;
  std::vector<std::string> code_to_value_;
};

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_RECODE_H_
