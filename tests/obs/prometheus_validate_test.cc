// Prometheus exposition correctness under adversarial metric names: the
// registry accepts any string as a metric name, the writer must sanitize
// every one of them into valid exposition text, and ValidatePrometheusText
// is the shared definition of "valid". Also pins the validator itself
// against hand-written invalid documents, so a validator that rubber-stamps
// everything cannot make these tests pass.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/prometheus_validate.h"
#include "obs/run_report.h"

namespace sliceline::obs {
namespace {

class PrometheusValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
  }
  void TearDown() override { SetMetricsEnabled(was_enabled_); }

  /// Renders a registry through the production writer.
  static std::string Exposition(const MetricsRegistry& registry) {
    std::ostringstream os;
    RunReport::WritePrometheus(os, &registry);
    return os.str();
  }

  bool was_enabled_ = false;
};

TEST_F(PrometheusValidateTest, AcceptsWellFormedText) {
  const std::string text =
      "# TYPE sliceline_jobs counter\n"
      "sliceline_jobs 3\n"
      "# TYPE sliceline_queue_depth gauge\n"
      "sliceline_queue_depth 1.5\n"
      "# TYPE sliceline_latency histogram\n"
      "sliceline_latency_bucket{le=\"0.1\"} 2\n"
      "sliceline_latency_bucket{le=\"1\"} 5\n"
      "sliceline_latency_bucket{le=\"+Inf\"} 7\n"
      "sliceline_latency_sum 4.25\n"
      "sliceline_latency_count 7\n";
  EXPECT_EQ(ValidatePrometheusText(text), "");
}

TEST_F(PrometheusValidateTest, RejectsInvalidDocuments) {
  // (document, reason it must fail) — each exercises one validator rule.
  const struct {
    const char* text;
    const char* what;
  } kCases[] = {
      {"# TYPE 9bad counter\n9bad 1\n", "name starting with a digit"},
      {"# TYPE sliceline_x widget\nsliceline_x 1\n", "unknown type"},
      {"sliceline_x 1\n", "sample before any TYPE line"},
      {"# TYPE sliceline_x counter\nsliceline_x banana\n",
       "non-numeric value"},
      {"# TYPE sliceline_x counter\nsliceline_x -2\n", "negative counter"},
      {"# TYPE sliceline_x counter\nsliceline_y 1\n",
       "sample outside its family"},
      {"# TYPE sliceline_x counter\nsliceline_x 1\n"
       "# TYPE sliceline_x counter\nsliceline_x 2\n",
       "duplicate TYPE for one family"},
      {"# TYPE sliceline_h histogram\n"
       "sliceline_h_bucket{le=\"1\"} 5\n"
       "sliceline_h_bucket{le=\"2\"} 3\n"
       "sliceline_h_bucket{le=\"+Inf\"} 5\n"
       "sliceline_h_sum 1\nsliceline_h_count 5\n",
       "non-cumulative buckets"},
      {"# TYPE sliceline_h histogram\n"
       "sliceline_h_bucket{le=\"+Inf\"} 5\n"
       "sliceline_h_sum 1\nsliceline_h_count 4\n",
       "_count differing from the +Inf bucket"},
      {"# TYPE sliceline_h histogram\n"
       "sliceline_h_bucket{le=\"1\"} 5\n"
       "sliceline_h_sum 1\nsliceline_h_count 5\n",
       "histogram without an +Inf bucket"},
  };
  for (const auto& test_case : kCases) {
    EXPECT_NE(ValidatePrometheusText(test_case.text), "")
        << "validator accepted a document with " << test_case.what << ":\n"
        << test_case.text;
  }
}

TEST_F(PrometheusValidateTest, AdversarialNamesRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("spaces in name")->Add(1);
  registry.GetCounter("quo\"te'd")->Add(2);
  registry.GetCounter("9starts_with_digit")->Add(3);
  registry.GetCounter("bra{ce}s{le=\"0\"}")->Add(4);
  registry.GetCounter("newline\nin\nname")->Add(5);
  registry.GetCounter("unicode_\xc3\xa9\xe2\x82\xac")->Add(6);
  registry.GetCounter("")->Add(7);
  registry.GetCounter("# TYPE fake counter")->Add(8);
  registry.GetGauge("tab\tgauge")->Set(-1.25);
  registry.GetHistogram("histo gram")->Observe(0.5);

  const std::string text = Exposition(registry);
  EXPECT_EQ(ValidatePrometheusText(text), "") << text;
  // The sanitized families are all present (prefix + '_' substitution).
  EXPECT_NE(text.find("sliceline_spaces_in_name 1"), std::string::npos);
  EXPECT_NE(text.find("sliceline_newline_in_name 5"), std::string::npos);
  EXPECT_NE(text.find("sliceline_histo_gram_count 1"), std::string::npos);
}

TEST_F(PrometheusValidateTest, SanitizationCollisionsStayDistinct) {
  // All three sanitize to sliceline_eval_time; the writer must keep three
  // distinct families or the exposition has duplicate TYPE lines.
  MetricsRegistry registry;
  registry.GetCounter("eval time")->Add(1);
  registry.GetCounter("eval.time")->Add(2);
  registry.GetCounter("eval/time")->Add(3);

  const std::string text = Exposition(registry);
  EXPECT_EQ(ValidatePrometheusText(text), "") << text;
  EXPECT_NE(text.find("sliceline_eval_time "), std::string::npos);
  EXPECT_NE(text.find("sliceline_eval_time_2 "), std::string::npos);
  EXPECT_NE(text.find("sliceline_eval_time_3 "), std::string::npos);
}

}  // namespace
}  // namespace sliceline::obs
