#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace sliceline::serve {

namespace {

StatusOr<SocketConnection> ConnectEndpoint(const Endpoint& endpoint,
                                           int timeout_ms) {
  if (!endpoint.unix_socket.empty()) {
    return ConnectUnix(endpoint.unix_socket, timeout_ms);
  }
  if (endpoint.tcp_port >= 0) return ConnectTcp(endpoint.tcp_port, timeout_ms);
  return Status::InvalidArgument("endpoint has neither socket path nor port");
}

}  // namespace

StatusOr<Client> Client::Connect(const Endpoint& endpoint,
                                 const ClientOptions& options) {
  double backoff = options.backoff_base_seconds;
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= options.backoff_multiplier;
    }
    auto connection = ConnectEndpoint(endpoint, options.connect_timeout_ms);
    if (connection.ok()) {
      return Client(std::move(connection).value(), endpoint, options);
    }
    if (connection.status().code() == StatusCode::kInvalidArgument) {
      return connection.status();  // a bad endpoint never becomes reachable
    }
    last = connection.status();
  }
  return last;
}

StatusOr<obs::JsonValue> Client::CallOnce(const Request& request, bool* wrote,
                                          bool* got_response) {
  *wrote = false;
  *got_response = false;
  const std::string line = SerializeRequest(request);
  const Status write_status = connection_.WriteLine(line, kMaxLineBytes);
  if (!write_status.ok()) {
    // The length guard rejects before writing a byte; anything else may
    // have put a partial request on the wire.
    *wrote = write_status.code() != StatusCode::kResourceExhausted;
    return write_status;
  }
  *wrote = true;
  SLICELINE_ASSIGN_OR_RETURN(
      const std::string response_line,
      connection_.ReadLine(kMaxLineBytes, options_.request_timeout_ms));
  *got_response = true;
  last_response_line_ = response_line;
  SLICELINE_ASSIGN_OR_RETURN(obs::JsonValue response,
                             obs::ParseJson(response_line));
  if (!response.is_object()) {
    return Status::Internal("response is not a JSON object");
  }
  const obs::JsonValue* ok = response.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::Internal("response missing boolean 'ok'");
  }
  if (!ok->bool_value()) {
    const obs::JsonValue* error = response.Find("error");
    if (error == nullptr || !error->is_object()) {
      return Status::Internal("error response missing 'error' object");
    }
    return StatusFromError(error->GetStringOr("code", "internal"),
                           error->GetStringOr("message", ""));
  }
  return response;
}

StatusOr<obs::JsonValue> Client::Call(Request request) {
  if (request.id.empty()) {
    request.id = "c" + std::to_string(next_id_++);
  }
  // find_slices may enqueue (or synchronously run) a job and append_rows
  // mutates the dataset (a blind resend would double-append the rows):
  // once either request line has hit the wire, only connect-phase failures
  // are retried. Everything else is idempotent.
  const bool idempotent = request.type != RequestType::kFindSlices &&
                          request.type != RequestType::kAppendRows;
  double backoff = options_.backoff_base_seconds;
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= options_.backoff_multiplier;
    }
    if (!connection_.valid()) {
      auto connection =
          ConnectEndpoint(endpoint_, options_.connect_timeout_ms);
      if (!connection.ok()) {
        if (connection.status().code() == StatusCode::kInvalidArgument) {
          return connection.status();
        }
        last = connection.status();
        continue;
      }
      connection_ = std::move(connection).value();
    }
    bool wrote = false;
    bool got_response = false;
    auto response = CallOnce(request, &wrote, &got_response);
    if (response.ok()) return response;
    // Once a response line was consumed, the failure is the server's final
    // answer (a structured error or an unparseable reply) -- never retried.
    // A write-guard rejection (oversized request, wrote == false with a
    // ResourceExhausted code) is a caller bug and equally final.
    if (got_response) return response;
    if (!wrote &&
        response.status().code() == StatusCode::kResourceExhausted) {
      return response;
    }
    // Transport failure: the connection is dead or desynchronized.
    connection_.Close();
    last = response.status();
    if (wrote && !idempotent) return response;
  }
  return last;
}

StatusOr<obs::JsonValue> Client::RegisterDataset(
    const RegisterDatasetRequest& r) {
  Request request;
  request.type = RequestType::kRegisterDataset;
  request.register_dataset = r;
  return Call(std::move(request));
}

StatusOr<FindSlicesReply> Client::FindSlices(const FindSlicesRequest& r) {
  Request request;
  request.type = RequestType::kFindSlices;
  request.find_slices = r;
  SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue response,
                             Call(std::move(request)));
  if (!r.wait) {
    // Async submission: no result yet; surface the job id via the reply.
    FindSlicesReply reply;
    SLICELINE_ASSIGN_OR_RETURN(reply.job_id, response.RequireInt("job"));
    return reply;
  }
  return UnpackFindSlicesReply(response);
}

StatusOr<obs::JsonValue> Client::GetStatus(int64_t job_id) {
  Request request;
  request.type = RequestType::kGetStatus;
  request.job_id = job_id;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::Cancel(int64_t job_id) {
  Request request;
  request.type = RequestType::kCancel;
  request.job_id = job_id;
  return Call(std::move(request));
}

StatusOr<std::string> Client::GetReport(int64_t job_id) {
  Request request;
  request.type = RequestType::kGetReport;
  request.job_id = job_id;
  SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue response,
                             Call(std::move(request)));
  const obs::JsonValue* report = response.Find("report");
  if (report == nullptr || !report->is_string()) {
    return Status::Internal("response missing string 'report'");
  }
  return report->string_value();
}

StatusOr<std::string> Client::GetTrace(int64_t job_id) {
  Request request;
  request.type = RequestType::kGetTrace;
  request.job_id = job_id;
  SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue response,
                             Call(std::move(request)));
  const obs::JsonValue* trace = response.Find("trace");
  if (trace == nullptr || !trace->is_string()) {
    return Status::Internal("response missing string 'trace'");
  }
  return trace->string_value();
}

StatusOr<obs::JsonValue> Client::AppendRows(const AppendRowsRequest& r) {
  Request request;
  request.type = RequestType::kAppendRows;
  request.append_rows = r;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::AppendRowsChunked(
    const std::string& dataset,
    const std::vector<std::vector<std::string>>& rows,
    const std::vector<double>& errors, int64_t rows_per_chunk) {
  if (rows_per_chunk < 1) {
    return Status::InvalidArgument("rows_per_chunk must be >= 1");
  }
  if (errors.size() != rows.size()) {
    return Status::InvalidArgument("append needs one error per row");
  }
  const int64_t total = static_cast<int64_t>(rows.size());
  const int64_t chunks =
      total == 0 ? 1 : (total + rows_per_chunk - 1) / rows_per_chunk;
  const std::string xfer = "x" + std::to_string(next_id_);
  StatusOr<obs::JsonValue> last = Status::Internal("no chunk sent");
  for (int64_t chunk = 0; chunk < chunks; ++chunk) {
    AppendRowsRequest r;
    r.dataset = dataset;
    r.xfer = xfer;
    r.chunk = chunk;
    r.chunks = chunks;
    const int64_t begin = chunk * rows_per_chunk;
    const int64_t end = std::min(total, begin + rows_per_chunk);
    r.rows.assign(rows.begin() + begin, rows.begin() + end);
    r.errors.assign(errors.begin() + begin, errors.begin() + end);
    last = AppendRows(r);
    if (!last.ok()) return last;
  }
  return last;
}

StatusOr<obs::JsonValue> Client::Watch(const WatchRequest& r) {
  Request request;
  request.type = RequestType::kWatchDataset;
  request.watch = r;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::Unwatch(const std::string& dataset) {
  Request request;
  request.type = RequestType::kUnwatchDataset;
  request.dataset = dataset;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::UnregisterDataset(const std::string& dataset) {
  Request request;
  request.type = RequestType::kUnregisterDataset;
  request.dataset = dataset;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::WatchStatus(const std::string& dataset) {
  Request request;
  request.type = RequestType::kGetStatus;
  request.dataset = dataset;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::ListDatasets() {
  Request request;
  request.type = RequestType::kListDatasets;
  return Call(std::move(request));
}

StatusOr<obs::JsonValue> Client::ServerStats() {
  Request request;
  request.type = RequestType::kServerStats;
  return Call(std::move(request));
}

StatusOr<FindSlicesReply> UnpackFindSlicesReply(
    const obs::JsonValue& response) {
  const obs::JsonValue* result = response.Find("result");
  if (result == nullptr) {
    return Status::Internal("response missing 'result' object");
  }
  FindSlicesReply reply;
  reply.job_id = response.GetIntOr("job", -1);
  reply.cache_hit = response.GetBoolOr("cache_hit", false);
  SLICELINE_ASSIGN_OR_RETURN(reply.result,
                             ParseResultJson(*result, &reply.feature_names));
  return reply;
}

StatusOr<std::string> FetchMetrics(const Endpoint& endpoint) {
  SLICELINE_ASSIGN_OR_RETURN(SocketConnection connection,
                             ConnectEndpoint(endpoint, /*timeout_ms=*/5000));
  SLICELINE_RETURN_NOT_OK(
      connection.WriteAll("GET /metrics HTTP/1.0\r\n\r\n"));
  SLICELINE_ASSIGN_OR_RETURN(const std::string response,
                             connection.ReadAll(8 * kMaxLineBytes));
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start == std::string::npos) {
    return Status::Internal("malformed HTTP response");
  }
  if (response.rfind("HTTP/1.0 200", 0) != 0) {
    const size_t eol = response.find("\r\n");
    return Status::Internal("metrics fetch failed: " +
                            response.substr(0, eol));
  }
  return response.substr(body_start + 4);
}

}  // namespace sliceline::serve
