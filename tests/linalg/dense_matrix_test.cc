#include "linalg/dense_matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sliceline::linalg {
namespace {

TEST(DenseMatrixTest, ConstructAndAccess) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(DenseMatrixTest, FromVector) {
  DenseMatrix m(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 4);
}

TEST(DenseMatrixTest, MatMulSmall) {
  DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  DenseMatrix b(3, 2, {7, 8, 9, 10, 11, 12});
  DenseMatrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154);
}

TEST(DenseMatrixTest, MatVecAndTransposeMatVec) {
  DenseMatrix a(2, 3, {1, 0, 2, 0, 3, 0});
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = a.MatVec(x);
  EXPECT_DOUBLE_EQ(y[0], 7);
  EXPECT_DOUBLE_EQ(y[1], 6);
  std::vector<double> z = a.TransposeMatVec({1, 1});
  EXPECT_DOUBLE_EQ(z[0], 1);
  EXPECT_DOUBLE_EQ(z[1], 3);
  EXPECT_DOUBLE_EQ(z[2], 2);
}

TEST(DenseMatrixTest, TransposeRoundTrip) {
  Rng rng(5);
  DenseMatrix a(4, 7);
  for (int64_t i = 0; i < a.rows(); ++i)
    for (int64_t j = 0; j < a.cols(); ++j) a.At(i, j) = rng.NextGaussian();
  DenseMatrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_DOUBLE_EQ(a.Transpose().Transpose().MaxAbsDiff(a), 0.0);
}

TEST(CholeskySolveTest, SolvesSpdSystem) {
  // A = B^T B + I is SPD.
  Rng rng(11);
  const int n = 6;
  DenseMatrix b(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j) b.At(i, j) = rng.NextGaussian();
  DenseMatrix a = b.Transpose().MatMul(b);
  for (int64_t i = 0; i < n; ++i) a.At(i, i) += 1.0;
  std::vector<double> x_true(n);
  for (int i = 0; i < n; ++i) x_true[i] = rng.NextGaussian();
  std::vector<double> rhs = a.MatVec(x_true);
  auto solved = CholeskySolve(a, rhs);
  ASSERT_TRUE(solved.ok());
  for (int i = 0; i < n; ++i) EXPECT_NEAR((*solved)[i], x_true[i], 1e-8);
}

TEST(CholeskySolveTest, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  EXPECT_FALSE(CholeskySolve(a, {1, 2}).ok());
}

TEST(CholeskySolveTest, RejectsRhsMismatch) {
  DenseMatrix a(2, 2, {1, 0, 0, 1});
  EXPECT_FALSE(CholeskySolve(a, {1, 2, 3}).ok());
}

TEST(CholeskySolveTest, RejectsIndefinite) {
  DenseMatrix a(2, 2, {0, 1, 1, 0});  // eigenvalues +-1
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(CholeskySolveTest, RidgeRescuesSingular) {
  DenseMatrix a(2, 2, {1, 1, 1, 1});  // rank 1
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
  EXPECT_TRUE(CholeskySolve(a, {1, 1}, /*ridge=*/0.1).ok());
}

}  // namespace
}  // namespace sliceline::linalg
