#include "common/logging.h"
#include "linalg/kernels.h"
#include "obs/kernel_scope.h"

namespace sliceline::linalg {

CsrMatrix FilterEquals(const CsrMatrix& m, double target) {
  SLICELINE_KERNEL_SCOPE("FilterEquals");
  SLICELINE_CHECK_NE(target, 0.0);  // implicit zeros would all match
  std::vector<int64_t> row_ptr(m.rows() + 1, 0);
  std::vector<int64_t> out_cols;
  std::vector<double> out_vals;
  for (int64_t r = 0; r < m.rows(); ++r) {
    const int64_t* cols = m.RowCols(r);
    const double* vals = m.RowVals(r);
    const int64_t nnz = m.RowNnz(r);
    for (int64_t k = 0; k < nnz; ++k) {
      if (vals[k] == target) {
        out_cols.push_back(cols[k]);
        out_vals.push_back(1.0);
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(out_cols.size());
  }
  return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr),
                   std::move(out_cols), std::move(out_vals));
}

CsrMatrix ScaleRows(const CsrMatrix& m, const std::vector<double>& scale) {
  SLICELINE_KERNEL_SCOPE("ScaleRows");
  SLICELINE_CHECK_EQ(m.rows(), static_cast<int64_t>(scale.size()));
  std::vector<int64_t> row_ptr(m.rows() + 1, 0);
  std::vector<int64_t> out_cols;
  std::vector<double> out_vals;
  for (int64_t r = 0; r < m.rows(); ++r) {
    const double s = scale[r];
    if (s != 0.0) {
      const int64_t* cols = m.RowCols(r);
      const double* vals = m.RowVals(r);
      const int64_t nnz = m.RowNnz(r);
      for (int64_t k = 0; k < nnz; ++k) {
        const double v = vals[k] * s;
        if (v != 0.0) {
          out_cols.push_back(cols[k]);
          out_vals.push_back(v);
        }
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(out_cols.size());
  }
  return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr),
                   std::move(out_cols), std::move(out_vals));
}

CsrMatrix Add(const CsrMatrix& a, const CsrMatrix& b) {
  SLICELINE_KERNEL_SCOPE("Add");
  SLICELINE_CHECK_EQ(a.rows(), b.rows());
  SLICELINE_CHECK_EQ(a.cols(), b.cols());
  std::vector<int64_t> row_ptr(a.rows() + 1, 0);
  std::vector<int64_t> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(a.nnz() + b.nnz());
  out_vals.reserve(a.nnz() + b.nnz());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const int64_t* ac = a.RowCols(r);
    const double* av = a.RowVals(r);
    const int64_t an = a.RowNnz(r);
    const int64_t* bc = b.RowCols(r);
    const double* bv = b.RowVals(r);
    const int64_t bn = b.RowNnz(r);
    int64_t i = 0;
    int64_t j = 0;
    while (i < an || j < bn) {
      int64_t col;
      double val;
      if (j >= bn || (i < an && ac[i] < bc[j])) {
        col = ac[i];
        val = av[i++];
      } else if (i >= an || bc[j] < ac[i]) {
        col = bc[j];
        val = bv[j++];
      } else {
        col = ac[i];
        val = av[i++] + bv[j++];
      }
      if (val != 0.0) {
        out_cols.push_back(col);
        out_vals.push_back(val);
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(out_cols.size());
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(row_ptr),
                   std::move(out_cols), std::move(out_vals));
}

CsrMatrix Binarize(const CsrMatrix& m) {
  SLICELINE_KERNEL_SCOPE("Binarize");
  std::vector<int64_t> row_ptr = m.row_ptr();
  std::vector<int64_t> cols = m.col_idx();
  std::vector<double> vals(m.values().size(), 1.0);
  return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr), std::move(cols),
                   std::move(vals));
}

std::vector<std::pair<int64_t, int64_t>> UpperTriEquals(const CsrMatrix& m,
                                                        double target) {
  SLICELINE_KERNEL_SCOPE("UpperTriEquals");
  std::vector<std::pair<int64_t, int64_t>> out;
  for (int64_t r = 0; r < m.rows(); ++r) {
    const int64_t* cols = m.RowCols(r);
    const double* vals = m.RowVals(r);
    const int64_t nnz = m.RowNnz(r);
    for (int64_t k = 0; k < nnz; ++k) {
      if (cols[k] > r && vals[k] == target) out.emplace_back(r, cols[k]);
    }
  }
  return out;
}

}  // namespace sliceline::linalg
