// Determinism guarantees: the reported top-K must be identical across
// repeated runs, thread-pool sizes, distributed shard counts, and
// fault-injected distributed runs (short of the documented local-fallback
// degradation). These are the invariants the fuzz harness's determinism
// check enforces per-case; this suite pins them on fixed datasets so a
// regression fails deterministically in tier-1.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/sliceline.h"
#include "dist/distributed_evaluator.h"
#include "linalg/kernels_simd.h"
#include "obs/metrics.h"
#include "testing/checks.h"
#include "testing/random_dataset.h"

namespace sliceline::core {
namespace {

/// Planted dataset with enough signal for a non-trivial top-K: two planted
/// problem conjunctions plus background noise.
struct Dataset {
  data::IntMatrix x0;
  std::vector<double> errors;
};

Dataset MakePlanted(uint64_t seed, int64_t n) {
  Rng rng(seed);
  Dataset d;
  d.x0 = data::IntMatrix(n, 5);
  d.errors.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < 5; ++j) {
      d.x0.At(i, j) = static_cast<int32_t>(rng.NextUint64(4)) + 1;
    }
    d.errors[i] = rng.NextBool(0.05) ? 1.0 : 0.0;
    if (d.x0.At(i, 0) == 1 && d.x0.At(i, 1) == 2) d.errors[i] = 1.0;
    if (d.x0.At(i, 2) == 3 && rng.NextBool(0.5)) d.errors[i] = 1.0;
  }
  return d;
}

/// Exact (bit-identical) top-K equality: same length, same predicate sets in
/// the same rank order, same scores and sizes.
void ExpectIdenticalTopK(const SliceLineResult& a, const SliceLineResult& b,
                         const std::string& label) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size()) << label;
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_EQ(a.top_k[i].predicates, b.top_k[i].predicates)
        << label << " rank " << i;
    EXPECT_EQ(a.top_k[i].stats.score, b.top_k[i].stats.score)
        << label << " rank " << i;
    EXPECT_EQ(a.top_k[i].stats.size, b.top_k[i].stats.size)
        << label << " rank " << i;
    EXPECT_EQ(a.top_k[i].stats.error_sum, b.top_k[i].stats.error_sum)
        << label << " rank " << i;
    EXPECT_EQ(a.top_k[i].stats.max_error, b.top_k[i].stats.max_error)
        << label << " rank " << i;
  }
}

class DeterminismTest : public ::testing::Test {
 protected:
  // Whatever a test does to the global pool or the kernel dispatch, restore
  // the defaults so later suites in the same binary see the normal
  // configuration (even when an assertion aborts a test mid-way).
  void TearDown() override {
    ResizeGlobalThreadPoolForTesting(0);
    linalg::ClearForcedIsa();
  }
};

TEST_F(DeterminismTest, RepeatedRunsAreBitIdentical) {
  Dataset d = MakePlanted(11, 1500);
  SliceLineConfig config;
  config.k = 6;
  config.parallel = true;
  auto first = RunSliceLine(d.x0, d.errors, config);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->top_k.empty());
  for (int run = 0; run < 3; ++run) {
    auto again = RunSliceLine(d.x0, d.errors, config);
    ASSERT_TRUE(again.ok());
    ExpectIdenticalTopK(*first, *again, "repeat run " + std::to_string(run));
  }
}

TEST_F(DeterminismTest, ThreadPoolSizeDoesNotChangeResult) {
  Dataset d = MakePlanted(13, 1500);
  SliceLineConfig config;
  config.k = 6;
  config.parallel = true;
  // Per-slice strategies are bit-identical regardless of how work is split
  // across threads; kScanBlock merges partial sums in completion order and
  // is covered (with tolerance) by the fuzz harness instead.
  using EvalStrategy = SliceLineConfig::EvalStrategy;
  for (EvalStrategy strategy : {EvalStrategy::kIndex, EvalStrategy::kBitset}) {
    config.eval_strategy = strategy;
    ResizeGlobalThreadPoolForTesting(1);
    auto baseline = RunSliceLine(d.x0, d.errors, config);
    ASSERT_TRUE(baseline.ok());
    ASSERT_FALSE(baseline->top_k.empty());
    for (size_t threads : {size_t{2}, size_t{8}}) {
      ResizeGlobalThreadPoolForTesting(threads);
      auto result = RunSliceLine(d.x0, d.errors, config);
      ASSERT_TRUE(result.ok());
      ExpectIdenticalTopK(*baseline, *result,
                          "threads=" + std::to_string(threads));
    }
  }
}

TEST_F(DeterminismTest, SimdDispatchDoesNotChangeResult) {
  // The bit-packed strategy must return the same top-K no matter which
  // vector ISA the kernels dispatch at and how the candidate loop is split
  // across threads: the SIMD levels only accelerate AND/popcount and
  // zero-word skipping, never the (ascending-row) float accumulation order.
  // Baseline: forced-scalar kernels on a single thread.
  Dataset d = MakePlanted(37, 1500);
  SliceLineConfig config;
  config.k = 6;
  config.parallel = true;
  config.eval_strategy = SliceLineConfig::EvalStrategy::kBitset;
  linalg::ForceIsa(linalg::SimdIsa::kScalar);
  ResizeGlobalThreadPoolForTesting(1);
  auto baseline = RunSliceLine(d.x0, d.errors, config);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->top_k.empty());
  for (linalg::SimdIsa isa : linalg::AvailableIsas()) {
    linalg::ForceIsa(isa);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ResizeGlobalThreadPoolForTesting(threads);
      auto result = RunSliceLine(d.x0, d.errors, config);
      ASSERT_TRUE(result.ok());
      ExpectIdenticalTopK(*baseline, *result,
                          std::string("isa=") + linalg::IsaName(isa) +
                              " threads=" + std::to_string(threads));
    }
  }
  linalg::ClearForcedIsa();
}

TEST_F(DeterminismTest, ShardCountDoesNotChangeResult) {
  Dataset d = MakePlanted(17, 1200);
  SliceLineConfig config;
  config.k = 5;
  auto local = RunSliceLine(d.x0, d.errors, config);
  ASSERT_TRUE(local.ok());
  ASSERT_FALSE(local->top_k.empty());
  for (int workers : {1, 3, 7}) {
    dist::DistOptions options;
    options.workers = workers;
    auto result = dist::RunSliceLineDistributed(d.x0, d.errors, config,
                                                options);
    ASSERT_TRUE(result.ok());
    ExpectIdenticalTopK(*local, *result,
                        "workers=" + std::to_string(workers));
  }
}

TEST_F(DeterminismTest, FaultInjectedRunsMatchFaultFree) {
  Dataset d = MakePlanted(19, 1200);
  SliceLineConfig config;
  config.k = 5;
  dist::DistOptions clean;
  clean.workers = 5;
  auto fault_free = dist::RunSliceLineDistributed(d.x0, d.errors, config,
                                                  clean);
  ASSERT_TRUE(fault_free.ok());
  ASSERT_FALSE(fault_free->top_k.empty());

  dist::DistOptions faulty = clean;
  faulty.fault.seed = 23;
  faulty.fault.transient_rate = 0.15;
  faulty.fault.straggler_rate = 0.15;
  faulty.fault.corruption_rate = 0.10;
  faulty.fault.loss_rate = 0.05;
  dist::DistFaultStats stats1;
  auto injected = dist::RunSliceLineDistributed(d.x0, d.errors, config,
                                                faulty, nullptr, &stats1);
  ASSERT_TRUE(injected.ok());
  // Recovery masks every fault exactly unless the run degraded to the
  // single-node fallback (which re-evaluates locally and is exact anyway,
  // but via a different code path).
  ExpectIdenticalTopK(*fault_free, *injected, "fault-injected");

  // The same plan replays to the same recovery actions.
  dist::DistFaultStats stats2;
  auto replay = dist::RunSliceLineDistributed(d.x0, d.errors, config, faulty,
                                              nullptr, &stats2);
  ASSERT_TRUE(replay.ok());
  ExpectIdenticalTopK(*injected, *replay, "fault replay");
  EXPECT_EQ(stats1, stats2) << stats1.Summary() << " vs " << stats2.Summary();
}

TEST_F(DeterminismTest, MetricsRegistryIsDeterministicAcrossThreadCounts) {
  // The observability layer must not be a source of nondeterminism:
  // sharded counters commute and histogram sums accumulate in fixed point,
  // so for a fixed dataset the full registry view (per-level counters,
  // evaluator counters, histogram observation counts) is identical for
  // thread-pool sizes 1, 2 and 8 — and matches the engine's own LevelStats.
  Dataset d = MakePlanted(31, 1500);
  SliceLineConfig config;
  config.k = 6;
  config.parallel = true;
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();

  struct RegistryView {
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> histogram_counts;
    bool operator==(const RegistryView&) const = default;
  };
  const auto run_and_snapshot = [&](size_t threads) {
    ResizeGlobalThreadPoolForTesting(threads);
    registry->ResetValues();
    auto result = RunSliceLine(d.x0, d.errors, config);
    EXPECT_TRUE(result.ok());
    // Registry counters must equal the engine's own per-level table.
    for (const LevelStats& level : result->levels) {
      EXPECT_EQ(registry
                    ->GetCounter(obs::LevelMetricName("native", level.level,
                                                      "candidates"))
                    ->Value(),
                level.candidates)
          << "threads=" << threads << " level " << level.level;
    }
    RegistryView view;
    for (const obs::MetricSample& sample : registry->Snapshot()) {
      if (sample.kind == obs::MetricSample::Kind::kCounter) {
        view.counters.emplace_back(sample.name, sample.counter_value);
      } else if (sample.kind == obs::MetricSample::Kind::kHistogram) {
        // Observation counts are deterministic; the observed durations
        // (and therefore sums/bucket spread) are wall-clock and are not.
        view.histogram_counts.emplace_back(sample.name,
                                           sample.histogram_count);
      }
    }
    return view;
  };

  const RegistryView baseline = run_and_snapshot(1);
  EXPECT_FALSE(baseline.counters.empty());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const RegistryView view = run_and_snapshot(threads);
    EXPECT_EQ(baseline.counters, view.counters) << "threads=" << threads;
    EXPECT_EQ(baseline.histogram_counts, view.histogram_counts)
        << "threads=" << threads;
  }
  registry->ResetValues();
  obs::SetMetricsEnabled(was_enabled);
}

TEST_F(DeterminismTest, HarnessDeterminismCheckPassesOnGeneratedCases) {
  // The fuzzer's determinism check bundles all of the above per generated
  // case (threads {1,2,8}, shards {1,3,7}, fault plan, stats replay); run it
  // on a few generator profiles as an integration seam between tier-1 and
  // the fuzz harness.
  testing::RandomDatasetGenerator generator(29);
  for (int profile = 0; profile < testing::RandomDatasetGenerator::num_profiles();
       profile += 3) {
    testing::FuzzCase fuzz_case = generator.NextWithProfile(profile);
    EXPECT_EQ(testing::CheckDeterminism(fuzz_case), "")
        << "profile " << testing::RandomDatasetGenerator::ProfileName(profile)
        << " seed " << fuzz_case.seed;
  }
}

}  // namespace
}  // namespace sliceline::core
