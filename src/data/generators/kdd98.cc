#include "common/rng.h"
#include "data/generators/generators.h"
#include "data/generators/planted_slices.h"

namespace sliceline::data {

// KDD98-like donation-regression dataset: 469 features whose domains sum to
// the paper's one-hot width l = 8378 (360 x 10-bin continuous, 80 x 20,
// 20 x 50, 9 x 242 high-cardinality categoricals). With skewed frequencies
// thousands of basic slices pass the minimum-support threshold, matching the
// enumeration profile of Figure 4(b).
EncodedDataset MakeKdd98(const DatasetOptions& options) {
  const int64_t n = internal::ResolveRows(options, 9541);  // paper: 95412
  Rng rng(options.seed + 3);

  std::vector<int32_t> domains;
  domains.insert(domains.end(), 360, 10);
  domains.insert(domains.end(), 80, 20);
  domains.insert(domains.end(), 20, 50);
  domains.insert(domains.end(), 9, 242);
  const int m = static_cast<int>(domains.size());  // 469

  EncodedDataset ds;
  ds.name = "kdd98";
  ds.task = Task::kRegression;
  ds.x0 = IntMatrix(n, m);
  for (int j = 0; j < m; ++j) {
    ds.feature_names.push_back("f" + std::to_string(j));
  }

  // A handful of correlated demographic blocks; the rest independent with
  // mild skew so that most common codes clear sigma = n/100.
  FillCorrelatedGroup(ds.x0, {0, 1, 2, 3}, {10, 10, 10, 10}, 0.2, rng);
  FillCorrelatedGroup(ds.x0, {360, 361, 362}, {20, 20, 20}, 0.2, rng);
  for (int j = 4; j < 360; ++j) FillCategorical(ds.x0, j, domains[j], 0.4, rng);
  for (int j = 363; j < m; ++j) {
    const double zipf = domains[j] >= 242 ? 1.1 : 0.6;
    FillCategorical(ds.x0, j, domains[j], zipf, rng);
  }

  ds.y.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ds.y[i] = 10.0 + 0.8 * ds.x0.At(i, 0) + 0.4 * ds.x0.At(i, 360) +
              2.0 * rng.NextGaussian();
  }

  // Strongly concentrated problem slices: real KDD98 residuals are heavy-
  // tailed, which is what makes the paper's score pruning effective on this
  // dataset (the top-K threshold rises quickly and the pair bounds cut the
  // quadratic level-2 candidate space down to thousands).
  ds.planted.push_back(PlantedSlice{{{0, 5}, {360, 3}}, 3.0});
  ds.planted.push_back(PlantedSlice{{{400, 2}}, 2.2});
  ds.planted.push_back(PlantedSlice{{{1, 7}, {2, 7}}, 3.5});

  // Bake the planted difficulty into the labels so trained models
  // genuinely struggle on these slices (held-out debugging works).
  InjectPlantedDifficulty(&ds, 3.5, 0.0, rng);

  ErrorSimOptions err;
  err.base_rate = 0.15;
  err.planted_rate = 3.0;
  ds.errors = SimulateModelErrors(ds, err, rng);
  return ds;
}

}  // namespace sliceline::data
