#ifndef SLICELINE_DATA_PREPROCESS_H_
#define SLICELINE_DATA_PREPROCESS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/encoded_dataset.h"
#include "data/frame.h"

namespace sliceline::data {

/// Configuration for turning a raw Frame into a slice-finding input,
/// mirroring the paper's preprocessing: recode categorical features, bin
/// continuous features (except labels) into equi-width bins, drop ID columns.
struct PreprocessOptions {
  std::string label_column;                 ///< required
  Task task = Task::kRegression;            ///< label interpretation
  int num_bins = 10;                        ///< equi-width bins (paper: 10)
  std::vector<std::string> drop_columns;    ///< e.g. ID columns
};

/// Encodes `frame` into an EncodedDataset. For classification the label
/// column is recoded to 0-based class ids; for regression it is used as-is.
/// The returned dataset has no error vector yet (train a model via ml/ or
/// use a generator's simulated errors).
StatusOr<EncodedDataset> Preprocess(const Frame& frame,
                                    const PreprocessOptions& options);

}  // namespace sliceline::data

#endif  // SLICELINE_DATA_PREPROCESS_H_
