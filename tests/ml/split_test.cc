#include "ml/split.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/sliceline.h"
#include "data/generators/generators.h"
#include "ml/error_functions.h"

namespace sliceline::ml {
namespace {

TEST(SplitTest, PartitionsRowsExactly) {
  data::DatasetOptions opts;
  opts.rows = 1000;
  data::EncodedDataset ds = data::MakeAdult(opts);
  auto split = SplitTrainTest(ds, 0.25, 7);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test.n(), 250);
  EXPECT_EQ(split->train.n(), 750);
  // Indices partition [0, n).
  std::vector<int64_t> all = split->train_rows;
  all.insert(all.end(), split->test_rows.begin(), split->test_rows.end());
  std::sort(all.begin(), all.end());
  for (int64_t i = 0; i < 1000; ++i) EXPECT_EQ(all[i], i);
  // Rows carried over faithfully.
  for (size_t i = 0; i < split->test_rows.size(); ++i) {
    for (int64_t j = 0; j < ds.m(); ++j) {
      EXPECT_EQ(split->test.x0.At(static_cast<int64_t>(i), j),
                ds.x0.At(split->test_rows[i], j));
    }
    EXPECT_EQ(split->test.y[i], ds.y[split->test_rows[i]]);
  }
}

TEST(SplitTest, DeterministicBySeed) {
  data::DatasetOptions opts;
  opts.rows = 500;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  auto a = SplitTrainTest(ds, 0.3, 11);
  auto b = SplitTrainTest(ds, 0.3, 11);
  auto c = SplitTrainTest(ds, 0.3, 12);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->test_rows, b->test_rows);
  EXPECT_NE(a->test_rows, c->test_rows);
}

TEST(SplitTest, RejectsBadFraction) {
  data::DatasetOptions opts;
  opts.rows = 300;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  EXPECT_FALSE(SplitTrainTest(ds, 0.0, 1).ok());
  EXPECT_FALSE(SplitTrainTest(ds, 1.0, 1).ok());
  EXPECT_FALSE(SplitTrainTest(ds, -0.5, 1).ok());
}

TEST(SplitTest, HeldOutDebuggingWorkflow) {
  // Train on train split, score the test split, find slices on test errors
  // (the model-validation debugging mode the paper describes).
  data::DatasetOptions opts;
  opts.rows = 4000;
  data::EncodedDataset ds = data::MakeSalaries(opts);
  auto split = SplitTrainTest(ds, 0.3, 3);
  ASSERT_TRUE(split.ok());
  auto test_error = TrainOnSplitAndScoreTest(&*split);
  ASSERT_TRUE(test_error.ok());
  EXPECT_GT(*test_error, 0.0);
  ASSERT_EQ(static_cast<int64_t>(split->test.errors.size()),
            split->test.n());

  core::SliceLineConfig config;
  config.k = 4;
  config.alpha = 0.95;
  auto result = core::RunSliceLine(split->test, config);
  ASSERT_TRUE(result.ok());
  // The planted problem slices produce positive-score test slices too.
  EXPECT_FALSE(result->top_k.empty());
}

TEST(SplitTest, TestCodesOutsideTrainDomainHandled) {
  // A code that only occurs in the test split must not break encoding.
  data::EncodedDataset ds;
  ds.task = data::Task::kRegression;
  ds.x0 = data::IntMatrix(10, 1);
  for (int64_t i = 0; i < 10; ++i) {
    ds.x0.At(i, 0) = i == 3 ? 5 : 1;  // rare high code
    ds.y.push_back(static_cast<double>(i));
  }
  // Seed chosen so row 3 lands in the test split.
  for (uint64_t seed = 0; seed < 50; ++seed) {
    auto split = SplitTrainTest(ds, 0.3, seed);
    ASSERT_TRUE(split.ok());
    if (std::find(split->test_rows.begin(), split->test_rows.end(), 3) ==
        split->test_rows.end()) {
      continue;
    }
    EXPECT_TRUE(TrainOnSplitAndScoreTest(&*split).ok());
    return;
  }
  GTEST_FAIL() << "no seed placed row 3 in the test split";
}

}  // namespace
}  // namespace sliceline::ml
