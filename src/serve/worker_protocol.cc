#include "serve/worker_protocol.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/json_validate.h"
#include "serve/protocol.h"

namespace sliceline::serve {

namespace {

StatusOr<const obs::JsonValue*> RequireArray(const obs::JsonValue& object,
                                             const std::string& key) {
  const obs::JsonValue* member = object.Find(key);
  if (member == nullptr || !member->is_array()) {
    return Status::InvalidArgument("missing array field '" + key + "'");
  }
  return member;
}

StatusOr<std::vector<double>> ParseDoubleArray(const obs::JsonValue& object,
                                               const std::string& key) {
  SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue* array,
                             RequireArray(object, key));
  std::vector<double> out;
  out.reserve(array->array_items().size());
  for (const obs::JsonValue& item : array->array_items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument("field '" + key +
                                     "' must contain only numbers");
    }
    out.push_back(item.number_value());
  }
  return out;
}

StatusOr<std::vector<int64_t>> ParseIntArray(const obs::JsonValue& object,
                                             const std::string& key) {
  SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue* array,
                             RequireArray(object, key));
  std::vector<int64_t> out;
  out.reserve(array->array_items().size());
  for (const obs::JsonValue& item : array->array_items()) {
    if (!item.is_number() ||
        item.number_value() != std::floor(item.number_value())) {
      return Status::InvalidArgument("field '" + key +
                                     "' must contain only integers");
    }
    out.push_back(static_cast<int64_t>(item.number_value()));
  }
  return out;
}

void WriteDoubleArray(obs::JsonWriter* writer, const char* key,
                      const std::vector<double>& values) {
  writer->Key(key);
  writer->BeginArray();
  for (double v : values) writer->Double(v);
  writer->EndArray();
}

/// 64-bit values travel as decimal strings: JSON numbers are doubles on
/// the wire and cannot represent every uint64_t.
StatusOr<uint64_t> ParseUint64Text(const std::string& text,
                                   const char* what) {
  if (text.empty() || text.size() > 20 ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument(std::string("malformed ") + what + " '" +
                                   text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(std::string("malformed ") + what + " '" +
                                   text + "'");
  }
  return static_cast<uint64_t>(value);
}

StatusOr<uint64_t> ParseChecksum(const obs::JsonValue& object) {
  SLICELINE_ASSIGN_OR_RETURN(const std::string text,
                             object.RequireString("checksum"));
  return ParseUint64Text(text, "checksum");
}

}  // namespace

const char* WorkerRequestTypeName(WorkerRequestType type) {
  switch (type) {
    case WorkerRequestType::kEnlist: return "enlist";
    case WorkerRequestType::kHasShard: return "has_shard";
    case WorkerRequestType::kLoadShard: return "load_shard";
    case WorkerRequestType::kBasicStats: return "basic_stats";
    case WorkerRequestType::kEvalBlock: return "eval_block";
    case WorkerRequestType::kHeartbeat: return "heartbeat";
    case WorkerRequestType::kGetSpans: return "get_spans";
    case WorkerRequestType::kShutdown: return "shutdown";
  }
  return "unknown";
}

StatusOr<WorkerRequestType> WorkerRequestTypeFromName(
    const std::string& name) {
  for (WorkerRequestType t :
       {WorkerRequestType::kEnlist, WorkerRequestType::kHasShard,
        WorkerRequestType::kLoadShard, WorkerRequestType::kBasicStats,
        WorkerRequestType::kEvalBlock, WorkerRequestType::kHeartbeat,
        WorkerRequestType::kGetSpans, WorkerRequestType::kShutdown}) {
    if (name == WorkerRequestTypeName(t)) return t;
  }
  return Status::InvalidArgument("unknown worker request type '" + name +
                                 "'");
}

StatusOr<WorkerRequest> ParseWorkerRequest(const std::string& line) {
  const std::string error = obs::ValidateStrictJson(line);
  if (!error.empty()) {
    return Status::InvalidArgument("malformed request: " + error);
  }
  SLICELINE_ASSIGN_OR_RETURN(obs::JsonValue root, obs::ParseJson(line));
  if (!root.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  WorkerRequest request;
  SLICELINE_ASSIGN_OR_RETURN(const std::string type_name,
                             root.RequireString("type"));
  SLICELINE_ASSIGN_OR_RETURN(request.type,
                             WorkerRequestTypeFromName(type_name));
  request.id = root.GetStringOr("id", "");
  if (root.Find("trace") != nullptr) {
    SLICELINE_ASSIGN_OR_RETURN(const std::string trace_text,
                               root.RequireString("trace"));
    SLICELINE_ASSIGN_OR_RETURN(request.trace_id,
                               ParseUint64Text(trace_text, "trace id"));
  }
  request.parent_span_id = root.GetIntOr("pspan", 0);

  switch (request.type) {
    case WorkerRequestType::kEnlist:
      request.protocol = root.GetIntOr("protocol", 0);
      break;
    case WorkerRequestType::kHeartbeat:
    case WorkerRequestType::kGetSpans:
    case WorkerRequestType::kShutdown:
      break;
    case WorkerRequestType::kHasShard:
    case WorkerRequestType::kBasicStats: {
      SLICELINE_ASSIGN_OR_RETURN(request.dataset_hash,
                                 root.RequireString("dataset"));
      SLICELINE_ASSIGN_OR_RETURN(request.shard, root.RequireInt("shard"));
      break;
    }
    case WorkerRequestType::kLoadShard: {
      SLICELINE_ASSIGN_OR_RETURN(request.dataset_hash,
                                 root.RequireString("dataset"));
      SLICELINE_ASSIGN_OR_RETURN(request.shard, root.RequireInt("shard"));
      LoadShardChunk& c = request.chunk;
      SLICELINE_ASSIGN_OR_RETURN(c.row_begin, root.RequireInt("row_begin"));
      SLICELINE_ASSIGN_OR_RETURN(c.row_end, root.RequireInt("row_end"));
      SLICELINE_ASSIGN_OR_RETURN(c.chunk, root.RequireInt("chunk"));
      SLICELINE_ASSIGN_OR_RETURN(c.chunks, root.RequireInt("chunks"));
      SLICELINE_ASSIGN_OR_RETURN(c.chunk_row_begin,
                                 root.RequireInt("chunk_row_begin"));
      SLICELINE_ASSIGN_OR_RETURN(c.cols, root.RequireInt("cols"));
      SLICELINE_ASSIGN_OR_RETURN(const std::vector<int64_t> codes,
                                 ParseIntArray(root, "codes"));
      c.codes.reserve(codes.size());
      for (int64_t code : codes) c.codes.push_back(static_cast<int32_t>(code));
      SLICELINE_ASSIGN_OR_RETURN(c.errors, ParseDoubleArray(root, "errors"));
      if (root.Find("fdom") != nullptr) {
        SLICELINE_ASSIGN_OR_RETURN(const std::vector<int64_t> fdom,
                                   ParseIntArray(root, "fdom"));
        c.fdom.reserve(fdom.size());
        for (int64_t d : fdom) c.fdom.push_back(static_cast<int32_t>(d));
      }
      break;
    }
    case WorkerRequestType::kEvalBlock: {
      SLICELINE_ASSIGN_OR_RETURN(request.dataset_hash,
                                 root.RequireString("dataset"));
      SLICELINE_ASSIGN_OR_RETURN(request.shard, root.RequireInt("shard"));
      request.strategy = root.GetStringOr("strategy", "index");
      request.block_size = root.GetIntOr("block_size", 16);
      SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue* slices,
                                 RequireArray(root, "slices"));
      for (const obs::JsonValue& slice : slices->array_items()) {
        if (!slice.is_array()) {
          return Status::InvalidArgument(
              "field 'slices' must contain arrays of column ids");
        }
        std::vector<int64_t> columns;
        columns.reserve(slice.array_items().size());
        for (const obs::JsonValue& column : slice.array_items()) {
          if (!column.is_number() ||
              column.number_value() != std::floor(column.number_value())) {
            return Status::InvalidArgument(
                "slice column ids must be integers");
          }
          columns.push_back(static_cast<int64_t>(column.number_value()));
        }
        request.slices.Add(columns);
      }
      break;
    }
  }
  return request;
}

std::string SerializeWorkerRequest(const WorkerRequest& request) {
  std::ostringstream os;
  obs::JsonWriter writer(os);
  writer.BeginObject();
  writer.Key("type");
  writer.String(WorkerRequestTypeName(request.type));
  if (!request.id.empty()) {
    writer.Key("id");
    writer.String(request.id);
  }
  if (request.trace_id != 0) {
    writer.Key("trace");
    writer.String(std::to_string(request.trace_id));
  }
  if (request.parent_span_id != 0) {
    writer.Key("pspan");
    writer.Int(request.parent_span_id);
  }
  switch (request.type) {
    case WorkerRequestType::kEnlist:
      writer.Key("protocol");
      writer.Int(request.protocol);
      break;
    case WorkerRequestType::kHeartbeat:
    case WorkerRequestType::kGetSpans:
    case WorkerRequestType::kShutdown:
      break;
    case WorkerRequestType::kHasShard:
    case WorkerRequestType::kBasicStats:
      writer.Key("dataset");
      writer.String(request.dataset_hash);
      writer.Key("shard");
      writer.Int(request.shard);
      break;
    case WorkerRequestType::kLoadShard: {
      writer.Key("dataset");
      writer.String(request.dataset_hash);
      writer.Key("shard");
      writer.Int(request.shard);
      const LoadShardChunk& c = request.chunk;
      writer.Key("row_begin");
      writer.Int(c.row_begin);
      writer.Key("row_end");
      writer.Int(c.row_end);
      writer.Key("chunk");
      writer.Int(c.chunk);
      writer.Key("chunks");
      writer.Int(c.chunks);
      writer.Key("chunk_row_begin");
      writer.Int(c.chunk_row_begin);
      writer.Key("cols");
      writer.Int(c.cols);
      writer.Key("codes");
      writer.BeginArray();
      for (int32_t code : c.codes) writer.Int(code);
      writer.EndArray();
      WriteDoubleArray(&writer, "errors", c.errors);
      if (!c.fdom.empty()) {
        writer.Key("fdom");
        writer.BeginArray();
        for (int32_t d : c.fdom) writer.Int(d);
        writer.EndArray();
      }
      break;
    }
    case WorkerRequestType::kEvalBlock: {
      writer.Key("dataset");
      writer.String(request.dataset_hash);
      writer.Key("shard");
      writer.Int(request.shard);
      writer.Key("strategy");
      writer.String(request.strategy);
      writer.Key("block_size");
      writer.Int(request.block_size);
      writer.Key("slices");
      writer.BeginArray();
      for (int64_t i = 0; i < request.slices.size(); ++i) {
        writer.BeginArray();
        const int64_t* columns = request.slices.Columns(i);
        for (int64_t j = 0; j < request.slices.Length(i); ++j) {
          writer.Int(columns[j]);
        }
        writer.EndArray();
      }
      writer.EndArray();
      break;
    }
  }
  writer.EndObject();
  os << '\n';
  return os.str();
}

void WriteEvalPayload(obs::JsonWriter* writer, const core::EvalResult& result,
                      uint64_t checksum) {
  WriteDoubleArray(writer, "sizes", result.sizes);
  WriteDoubleArray(writer, "error_sums", result.error_sums);
  WriteDoubleArray(writer, "max_errors", result.max_errors);
  writer->Key("checksum");
  writer->String(std::to_string(checksum));
}

StatusOr<core::EvalResult> ParseEvalPayload(const obs::JsonValue& response,
                                            uint64_t* checksum) {
  core::EvalResult result;
  SLICELINE_ASSIGN_OR_RETURN(result.sizes,
                             ParseDoubleArray(response, "sizes"));
  SLICELINE_ASSIGN_OR_RETURN(result.error_sums,
                             ParseDoubleArray(response, "error_sums"));
  SLICELINE_ASSIGN_OR_RETURN(result.max_errors,
                             ParseDoubleArray(response, "max_errors"));
  SLICELINE_ASSIGN_OR_RETURN(*checksum, ParseChecksum(response));
  return result;
}

void WriteBasicStatsPayload(obs::JsonWriter* writer,
                            const ShardBasicStats& stats) {
  writer->Key("n");
  writer->Int(stats.n);
  writer->Key("total_error");
  writer->Double(stats.total_error);
  writer->Key("sizes");
  writer->BeginArray();
  for (int64_t size : stats.sizes) writer->Int(size);
  writer->EndArray();
  WriteDoubleArray(writer, "error_sums", stats.error_sums);
  WriteDoubleArray(writer, "max_errors", stats.max_errors);
}

StatusOr<ShardBasicStats> ParseBasicStatsPayload(
    const obs::JsonValue& response) {
  ShardBasicStats stats;
  SLICELINE_ASSIGN_OR_RETURN(stats.n, response.RequireInt("n"));
  SLICELINE_ASSIGN_OR_RETURN(stats.total_error,
                             response.RequireNumber("total_error"));
  SLICELINE_ASSIGN_OR_RETURN(stats.sizes, ParseIntArray(response, "sizes"));
  SLICELINE_ASSIGN_OR_RETURN(stats.error_sums,
                             ParseDoubleArray(response, "error_sums"));
  SLICELINE_ASSIGN_OR_RETURN(stats.max_errors,
                             ParseDoubleArray(response, "max_errors"));
  if (stats.sizes.size() != stats.error_sums.size() ||
      stats.sizes.size() != stats.max_errors.size()) {
    return Status::InvalidArgument("basic stats arrays disagree on length");
  }
  return stats;
}

void WriteSpansPayload(
    obs::JsonWriter* writer, const std::vector<obs::RemoteSpan>& spans,
    const std::vector<std::pair<std::string, double>>& counters) {
  writer->Key("spans");
  writer->BeginArray();
  for (const obs::RemoteSpan& span : spans) {
    writer->BeginObject();
    writer->Key("name");
    writer->String(span.name);
    writer->Key("cat");
    writer->String(span.category);
    writer->Key("ph");
    writer->String(std::string(1, span.phase));
    writer->Key("ts");
    writer->Int(span.ts_us);
    writer->Key("dur");
    writer->Int(span.dur_us);
    writer->Key("tid");
    writer->Int(span.tid);
    if (span.has_arg) {
      writer->Key("v");
      writer->Int(span.arg);
    }
    if (!span.detail.empty()) {
      writer->Key("detail");
      writer->String(span.detail);
    }
    if (span.trace_id != 0) {
      writer->Key("trace");
      writer->String(std::to_string(span.trace_id));
    }
    if (span.parent_span_id != 0) {
      writer->Key("pspan");
      writer->Int(span.parent_span_id);
    }
    writer->EndObject();
  }
  writer->EndArray();
  writer->Key("counters");
  writer->BeginArray();
  for (const auto& [name, value] : counters) {
    writer->BeginObject();
    writer->Key("name");
    writer->String(name);
    writer->Key("value");
    writer->Double(value);
    writer->EndObject();
  }
  writer->EndArray();
}

Status ParseSpansPayload(
    const obs::JsonValue& response, std::vector<obs::RemoteSpan>* spans,
    std::vector<std::pair<std::string, double>>* counters) {
  SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue* span_array,
                             RequireArray(response, "spans"));
  spans->clear();
  spans->reserve(span_array->array_items().size());
  for (const obs::JsonValue& item : span_array->array_items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("field 'spans' must contain objects");
    }
    obs::RemoteSpan span;
    SLICELINE_ASSIGN_OR_RETURN(span.name, item.RequireString("name"));
    span.category = item.GetStringOr("cat", "sliceline");
    SLICELINE_ASSIGN_OR_RETURN(const std::string phase,
                               item.RequireString("ph"));
    if (phase.size() != 1) {
      return Status::InvalidArgument("span phase must be one character");
    }
    span.phase = phase[0];
    SLICELINE_ASSIGN_OR_RETURN(span.ts_us, item.RequireInt("ts"));
    span.dur_us = item.GetIntOr("dur", 0);
    span.tid = item.GetIntOr("tid", 0);
    if (item.Find("v") != nullptr) {
      span.has_arg = true;
      SLICELINE_ASSIGN_OR_RETURN(span.arg, item.RequireInt("v"));
    }
    span.detail = item.GetStringOr("detail", "");
    if (item.Find("trace") != nullptr) {
      SLICELINE_ASSIGN_OR_RETURN(const std::string trace_text,
                                 item.RequireString("trace"));
      SLICELINE_ASSIGN_OR_RETURN(span.trace_id,
                                 ParseUint64Text(trace_text, "trace id"));
    }
    span.parent_span_id = item.GetIntOr("pspan", 0);
    spans->push_back(std::move(span));
  }
  SLICELINE_ASSIGN_OR_RETURN(const obs::JsonValue* counter_array,
                             RequireArray(response, "counters"));
  counters->clear();
  counters->reserve(counter_array->array_items().size());
  for (const obs::JsonValue& item : counter_array->array_items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("field 'counters' must contain objects");
    }
    SLICELINE_ASSIGN_OR_RETURN(std::string name, item.RequireString("name"));
    SLICELINE_ASSIGN_OR_RETURN(const double value,
                               item.RequireNumber("value"));
    counters->emplace_back(std::move(name), value);
  }
  return Status::OK();
}

}  // namespace sliceline::serve
