#ifndef SLICELINE_OBS_TRACE_MERGE_H_
#define SLICELINE_OBS_TRACE_MERGE_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace sliceline::obs {

/// A span that crossed a process boundary: the same shape as TraceEvent but
/// with owned strings, because the literal-pointer discipline of the
/// in-process recorder cannot survive serialization.
struct RemoteSpan {
  std::string name;
  std::string category = "sliceline";
  char phase = 'X';
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  int64_t tid = 0;
  bool has_arg = false;
  int64_t arg = 0;
  uint64_t trace_id = 0;
  int64_t parent_span_id = 0;
  std::string detail;
};

/// Deep copy of a locally recorded event into the owned-string form.
RemoteSpan RemoteSpanFromEvent(const TraceEvent& event);

/// One process's lane in a merged fleet trace. `clock_offset_us` is the
/// remote steady clock minus the local one (estimated from request
/// round-trips); the merge subtracts it so every lane shares the local
/// timebase.
struct ProcessTrack {
  std::string label;  ///< shown as the Perfetto process name
  int64_t clock_offset_us = 0;
  std::vector<RemoteSpan> spans;
};

/// Observability shipped back from one remote process for one job: its
/// spans plus counter deltas from its metrics registry, and the clock
/// offset the coordinator estimated for it.
struct ProcessObs {
  std::string label;   ///< e.g. "worker w1234-0"
  int64_t os_pid = 0;  ///< remote OS pid (report attribution only)
  int64_t clock_offset_us = 0;
  std::vector<RemoteSpan> spans;
  std::vector<std::pair<std::string, double>> counters;
};

/// Everything a distributed engine hands back alongside a result so the
/// scheduler can assemble one report and one merged timeline per job.
/// `sections` are flat numeric report sections keyed by section name
/// (e.g. "dist_cost" -> {"rounds": 3, ...}).
struct DistObsBundle {
  uint64_t trace_id = 0;
  std::vector<ProcessObs> workers;
  std::map<std::string, std::map<std::string, double>> sections;
};

/// Writes `tracks` as one strict Chrome-tracing JSON document
/// ({"traceEvents":[...],"displayTimeUnit":"ms"}). Track i is assigned
/// pid i+1 and an 'M'-phase process_name metadata record carrying its
/// label, so Perfetto shows one named lane per process; span timestamps
/// are shifted by -clock_offset_us onto track 0's timebase.
void WriteMergedChromeTrace(const std::vector<ProcessTrack>& tracks,
                            std::ostream& os);

}  // namespace sliceline::obs

#endif  // SLICELINE_OBS_TRACE_MERGE_H_
