
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/salary_regression_debugging.cpp" "examples/CMakeFiles/salary_regression_debugging.dir/salary_regression_debugging.cpp.o" "gcc" "examples/CMakeFiles/salary_regression_debugging.dir/salary_regression_debugging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sliceline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
