
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/logging_test.cc" "tests/CMakeFiles/common_test.dir/common/logging_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/logging_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/common_test.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/common_test.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/string_util_test.cc" "tests/CMakeFiles/common_test.dir/common/string_util_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/string_util_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sliceline_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sliceline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
