#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sliceline::ml {

namespace {

/// Row-wise softmax in place.
void SoftmaxRows(linalg::DenseMatrix& logits) {
  for (int64_t i = 0; i < logits.rows(); ++i) {
    double* row = logits.row(i);
    double mx = row[0];
    for (int64_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < logits.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (int64_t c = 0; c < logits.cols(); ++c) row[c] /= sum;
  }
}

/// logits(i, c) = sum_j x(i, j) * w(c, j) + bias[c].
linalg::DenseMatrix ComputeLogits(const linalg::CsrMatrix& x,
                                  const linalg::DenseMatrix& w,
                                  const std::vector<double>& bias) {
  const int64_t k = w.rows();
  linalg::DenseMatrix logits(x.rows(), k);
  for (int64_t i = 0; i < x.rows(); ++i) {
    const int64_t* cols = x.RowCols(i);
    const double* vals = x.RowVals(i);
    const int64_t nnz = x.RowNnz(i);
    double* out = logits.row(i);
    for (int64_t c = 0; c < k; ++c) {
      const double* wc = w.row(c);
      double acc = bias[c];
      for (int64_t t = 0; t < nnz; ++t) acc += vals[t] * wc[cols[t]];
      out[c] = acc;
    }
  }
  return logits;
}

}  // namespace

StatusOr<LogisticRegression> LogisticRegression::Fit(
    const linalg::CsrMatrix& x, const std::vector<double>& y,
    const Options& options) {
  const int64_t n = x.rows();
  const int64_t d = x.cols();
  const int k = options.num_classes;
  if (static_cast<int64_t>(y.size()) != n) {
    return Status::InvalidArgument("label vector size mismatch");
  }
  if (k < 2) return Status::InvalidArgument("need at least 2 classes");
  for (double v : y) {
    if (v < 0 || v >= k || v != std::floor(v)) {
      return Status::InvalidArgument("labels must be 0-based class ids");
    }
  }

  linalg::DenseMatrix w(k, d);
  linalg::DenseMatrix vel(k, d);
  std::vector<double> bias(static_cast<size_t>(k), 0.0);
  std::vector<double> bias_vel(static_cast<size_t>(k), 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    linalg::DenseMatrix probs = ComputeLogits(x, w, bias);
    SoftmaxRows(probs);
    // Gradient: X^T (P - Y) / n + lambda * W, accumulated sparsely.
    linalg::DenseMatrix grad(k, d);
    std::vector<double> bias_grad(static_cast<size_t>(k), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      const int yi = static_cast<int>(y[i]);
      const int64_t* cols = x.RowCols(i);
      const double* vals = x.RowVals(i);
      const int64_t nnz = x.RowNnz(i);
      const double* p = probs.row(i);
      for (int c = 0; c < k; ++c) {
        const double delta = (p[c] - (c == yi ? 1.0 : 0.0)) * inv_n;
        if (delta == 0.0) continue;
        bias_grad[c] += delta;
        double* gc = grad.row(c);
        for (int64_t t = 0; t < nnz; ++t) gc[cols[t]] += delta * vals[t];
      }
    }
    for (int c = 0; c < k; ++c) {
      double* gc = grad.row(c);
      const double* wc = w.row(c);
      double* vc = vel.row(c);
      double* wcm = w.row(c);
      for (int64_t j = 0; j < d; ++j) {
        const double g = gc[j] + options.lambda * wc[j];
        vc[j] = options.momentum * vc[j] - options.learning_rate * g;
        wcm[j] += vc[j];
      }
      bias_vel[c] = options.momentum * bias_vel[c] -
                    options.learning_rate * bias_grad[c];
      bias[c] += bias_vel[c];
    }
  }
  return LogisticRegression(std::move(w), std::move(bias));
}

linalg::DenseMatrix LogisticRegression::PredictProbabilities(
    const linalg::CsrMatrix& x) const {
  linalg::DenseMatrix probs = ComputeLogits(x, weights_, bias_);
  SoftmaxRows(probs);
  return probs;
}

std::vector<double> LogisticRegression::Predict(
    const linalg::CsrMatrix& x) const {
  linalg::DenseMatrix logits = ComputeLogits(x, weights_, bias_);
  std::vector<double> out(static_cast<size_t>(x.rows()));
  for (int64_t i = 0; i < x.rows(); ++i) {
    const double* row = logits.row(i);
    int best = 0;
    for (int64_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = static_cast<int>(c);
    }
    out[i] = best;
  }
  return out;
}

}  // namespace sliceline::ml
